"""R012 fixture: one emission site per conformance violation.

Each method of ``BadEmitter`` breaks exactly one registry rule —
dynamic name, undeclared name, wrong kind, missing required field,
undeclared field, dynamically built label value — plus a deferred
``events.append`` entry with an unknown name.  The relay form (dynamic
name with ``**fields``) appears once and must NOT be flagged.
"""


class BadEmitter:
    def __init__(self, obs):
        self._obs = obs
        self.events = []

    def dynamic_name(self, stage):
        self._obs.emit(f"stage.{stage}", slot=1)

    def unknown_name(self):
        self._obs.emit("decode.wat", slot=1)

    def wrong_kind(self):
        self._obs.emit("dci.decoded", slot=1)

    def missing_field(self):
        self._obs.emit("dci.miss", slot=1)

    def undeclared_field(self):
        self._obs.emit("sync.acquired", slot=1, beam=3)

    def label_bomb(self, slot):
        self._obs.count("stage.drop", stage="decode",
                        reason=f"slot-{slot}")

    def deferred_unknown(self, slot):
        self.events.append(("decode.nope", {"slot": slot}))

    def relay(self, name, fields):
        self._obs.emit(name, **fields)
