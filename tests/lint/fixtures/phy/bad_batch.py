"""R008 + R006 fixture: a batched kernel done wrong, both ways.

The batched PHY path's two contracts are dtype-pinned scratch (R008 —
a dtype-less stacked allocation silently promotes every candidate row
to float64) and stage purity (R006 — a batched closure that samples the
wall clock or mutates the tracked table breaks executor determinism).
This fixture seeds one violation of each in the shapes the real batch
kernels use: a ``(rows, width)`` stacked gather buffer and a
``Stage(..., parallel=True)`` batched decode closure.
"""

import time

import numpy as np


class Stage:
    def __init__(self, name, fn, parallel=False):
        self.name = name
        self.fn = fn
        self.parallel = parallel


def gather_candidates_stacked(grid, starts, width):
    stacked = np.empty((len(starts), width))
    energies = np.zeros(len(starts))
    for row, start in enumerate(starts):
        stacked[row] = grid[start:start + width]
        energies[row] = abs(stacked[row]).mean()
    return stacked, energies


def _batch_deadline():
    return time.time() + 0.5


def decode_candidates_batch(ctx):
    stacked, energies = gather_candidates_stacked(
        ctx.grid, ctx.starts, ctx.width)
    deadline = _batch_deadline()
    decoded = []
    for row, energy in enumerate(energies):
        if time.time() > deadline:
            break
        if energy > ctx.threshold:
            decoded.append(stacked[row])
            ctx.tracked[ctx.rntis[row]].decoded_dcis += 1
    return decoded


BATCH_STAGE = Stage("dci-batch", decode_candidates_batch, parallel=True)
