"""Tests for the virtual USRP front end: AGC, resampling, capture."""

import numpy as np
import pytest

from repro.phy.ofdm import OfdmConfig
from repro.phy.resource_grid import ResourceGrid
from repro.radio.iq import AutomaticGainControl, FrontEndError, \
    VirtualUsrp, resample
from repro.radio.medium import Link


class TestAgc:
    def test_converges_to_target(self):
        agc = AutomaticGainControl(target_rms=1.0, smoothing=0.5)
        samples = 0.01 * np.ones(1000, dtype=complex)
        for _ in range(20):
            out = agc.process(samples)
        rms = np.sqrt(np.mean(np.abs(out) ** 2))
        assert rms == pytest.approx(1.0, rel=0.05)

    def test_silence_keeps_gain(self):
        agc = AutomaticGainControl()
        agc.gain = 3.0
        agc.process(np.zeros(100, dtype=complex))
        assert agc.gain == 3.0


class TestResample:
    def test_identity(self, rng):
        samples = rng.normal(size=100) + 1j * rng.normal(size=100)
        assert np.array_equal(resample(samples, 1.0), samples)

    def test_length_scales(self, rng):
        samples = rng.normal(size=1000) + 0j
        assert resample(samples, 2.0).size == 2000
        assert resample(samples, 0.5).size == 500

    def test_roundtrip_preserves_smooth_signal(self):
        t = np.linspace(0, 1, 2000)
        tone = np.exp(2j * np.pi * 5 * t)
        back = resample(resample(tone, 1.5), 1 / 1.5)[:2000]
        assert np.max(np.abs(back[:1900] - tone[:1900])) < 0.05

    def test_rejects_bad_ratio(self):
        with pytest.raises(FrontEndError):
            resample(np.zeros(4, dtype=complex), 0.0)


class TestVirtualUsrp:
    def make(self, snr_db=20.0, n_prb=20, **kwargs):
        return VirtualUsrp(link=Link(snr_db=snr_db),
                           ofdm=OfdmConfig.for_grid(n_prb * 12), **kwargs)

    def test_grid_capture_adds_noise(self, rng):
        usrp = self.make(snr_db=0.0)
        grid = ResourceGrid(20)
        captured = usrp.capture_grid(grid)
        power = np.mean(np.abs(captured.data) ** 2)
        assert power == pytest.approx(1.0, rel=0.1)

    def test_iq_capture_roundtrip_high_snr(self, rng):
        usrp = self.make(snr_db=45.0)
        grid = ResourceGrid(20)
        grid.data[:] = (rng.normal(size=grid.data.shape)
                        + 1j * rng.normal(size=grid.data.shape)) / np.sqrt(2)
        captured = usrp.capture_iq(grid)
        error = np.mean(np.abs(captured.data - grid.data) ** 2)
        assert error < 0.01

    def test_iq_capture_with_resampler(self, rng):
        usrp = self.make(snr_db=45.0, resample_ratio=1.25)
        grid = ResourceGrid(20)
        grid.data[:, :] = 1.0
        captured = usrp.capture_iq(grid)
        # Linear resampling loses some fidelity but the grid must still
        # be clearly recovered.
        assert np.mean(np.abs(captured.data - grid.data) ** 2) < 0.2

    def test_geometry_mismatch_rejected(self):
        usrp = self.make(n_prb=20)
        with pytest.raises(FrontEndError):
            usrp.capture_iq(ResourceGrid(10))

    def test_noise_variance_matches_link(self):
        assert self.make(snr_db=10.0).noise_variance == pytest.approx(0.1)
