"""Constellation mapping and soft demapping (TS 38.211 section 5.1).

The PDCCH is always QPSK; the PDSCH uses QPSK through 256-QAM selected by
the MCS index.  The demapper produces log-likelihood ratios (positive LLR
means the bit is more likely 0, matching the convention in the polar
decoder), which is what lets decode failures emerge from channel noise
rather than from an arbitrary error model.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


class ModulationError(ValueError):
    """Raised for unknown schemes or malformed inputs."""


@dataclass(frozen=True)
class ModulationScheme:
    """A named constellation with its order ``Qm`` (bits per symbol)."""

    name: str
    bits_per_symbol: int


BPSK = ModulationScheme("BPSK", 1)
QPSK = ModulationScheme("QPSK", 2)
QAM16 = ModulationScheme("16QAM", 4)
QAM64 = ModulationScheme("64QAM", 6)
QAM256 = ModulationScheme("256QAM", 8)

SCHEMES = {s.name: s for s in (BPSK, QPSK, QAM16, QAM64, QAM256)}

#: Unit-energy normalisation per modulation order (38.211 section 5.1).
_NORMALIZERS = {1: np.sqrt(2.0), 2: np.sqrt(2.0), 4: np.sqrt(10.0),
                6: np.sqrt(42.0), 8: np.sqrt(170.0)}


def _scheme(modulation: str | ModulationScheme) -> ModulationScheme:
    if isinstance(modulation, ModulationScheme):
        return modulation
    if modulation not in SCHEMES:
        raise ModulationError(f"unknown modulation: {modulation!r}")
    return SCHEMES[modulation]


def _axis_amplitude(axis_bits: list[int]) -> float:
    """PAM amplitude for one I/Q axis per the explicit 38.211 formulas.

    ``axis_bits`` are the bits feeding this axis in transmission order,
    e.g. ``[b0, b2, b4]`` for the I axis of 64QAM. The recursive pattern
    ``(1-2b)(2^k - inner)`` is exactly the standard's nesting.
    """
    sign = 1 - 2 * axis_bits[0]
    if len(axis_bits) == 1:
        return float(sign)
    inner = _axis_amplitude(axis_bits[1:])
    return float(sign * ((1 << (len(axis_bits) - 1)) - inner))


def _build_constellation(qm: int) -> np.ndarray:
    """Complex constellation points indexed by the Qm-bit symbol value."""
    norm = _NORMALIZERS[qm]
    if qm == 1:
        return np.array([(1 + 1j), -(1 + 1j)]) / np.sqrt(2.0)
    half = qm // 2
    points = np.zeros(1 << qm, dtype=np.complex128)
    for value in range(1 << qm):
        bits = [(value >> (qm - 1 - k)) & 1 for k in range(qm)]
        # 38.211 interleaves: even-index bits drive I, odd-index bits Q.
        i_amp = _axis_amplitude(bits[0::2][:half])
        q_amp = _axis_amplitude(bits[1::2][:half])
        points[value] = (i_amp + 1j * q_amp) / norm
    return points


_CONSTELLATIONS: dict[int, np.ndarray] = {}


def constellation(modulation: str | ModulationScheme) -> np.ndarray:
    """Return (and cache) the unit-energy constellation for a scheme."""
    scheme = _scheme(modulation)
    qm = scheme.bits_per_symbol
    if qm not in _CONSTELLATIONS:
        _CONSTELLATIONS[qm] = _build_constellation(qm)
    return _CONSTELLATIONS[qm]


def modulate(bits: np.ndarray, modulation: str | ModulationScheme) -> np.ndarray:
    """Map a bit array onto complex symbols (unit average energy)."""
    scheme = _scheme(modulation)
    arr = np.asarray(bits, dtype=np.uint8)
    qm = scheme.bits_per_symbol
    if arr.size % qm:
        raise ModulationError(
            f"bit count {arr.size} not a multiple of Qm={qm}")
    groups = arr.reshape(-1, qm)
    weights = 1 << np.arange(qm - 1, -1, -1)
    values = groups @ weights
    return constellation(scheme)[values]


def demodulate_soft(symbols: np.ndarray, modulation: str | ModulationScheme,
                    noise_var: float) -> np.ndarray:
    """Max-log LLRs for each transmitted bit; positive favours bit=0.

    Uses the exact max-log approximation over the full constellation,
    which is fast enough at PDCCH scale (QPSK) and exercised by tests for
    the higher orders used on the PDSCH model.

    Layout: symbols (S) complex128
    Layout: return (E) float64
    """
    scheme = _scheme(modulation)
    qm = scheme.bits_per_symbol
    syms = np.asarray(symbols, dtype=np.complex128).ravel()
    if noise_var <= 0:
        raise ModulationError(f"noise variance must be positive: {noise_var}")
    points = constellation(scheme)
    # distances: (n_symbols, n_points)
    d2 = np.abs(syms[:, None] - points[None, :]) ** 2
    llrs = np.zeros((syms.size, qm), dtype=np.float64)
    values = np.arange(points.size)
    for b in range(qm):
        bit = (values >> (qm - 1 - b)) & 1
        d0 = d2[:, bit == 0].min(axis=1)
        d1 = d2[:, bit == 1].min(axis=1)
        llrs[:, b] = (d1 - d0) / noise_var
    return llrs.ravel()


def demodulate_soft_batch(symbols: np.ndarray,
                          modulation: str | ModulationScheme,
                          noise_var: float) -> np.ndarray:
    """Max-log LLRs for a stacked ``(B, n_symbols)`` symbol matrix.

    Returns a ``(B, n_symbols * Qm)`` LLR matrix. The demapper is
    elementwise over symbols, so this is exactly
    :func:`demodulate_soft` applied per row (flatten, demap once,
    reshape) — bit-identical, but one numpy dispatch for the whole
    candidate batch instead of one per candidate.

    Layout: symbols (B, S) complex128
    Layout: return (B, E) float64
    """
    scheme = _scheme(modulation)
    arr = np.asarray(symbols, dtype=np.complex128)
    if arr.ndim != 2:
        raise ModulationError(
            f"expected a (B, n_symbols) matrix, got shape {arr.shape}")
    batch, n_symbols = arr.shape
    qm = scheme.bits_per_symbol
    if batch == 0:
        return np.zeros((0, n_symbols * qm), dtype=np.float64)
    flat = demodulate_soft(arr.reshape(-1), scheme, noise_var)
    return flat.reshape(batch, n_symbols * qm)


def demodulate_hard(symbols: np.ndarray,
                    modulation: str | ModulationScheme) -> np.ndarray:
    """Nearest-point hard decisions, returned as a flat bit array."""
    scheme = _scheme(modulation)
    qm = scheme.bits_per_symbol
    syms = np.asarray(symbols, dtype=np.complex128).ravel()
    points = constellation(scheme)
    nearest = np.abs(syms[:, None] - points[None, :]).argmin(axis=1)
    bits = ((nearest[:, None] >> np.arange(qm - 1, -1, -1)) & 1)
    return bits.astype(np.uint8).ravel()
