"""Fig 8: CCDF of per-TTI REG decoding errors.

Paper result: average 0.77 REG error per TTI; more than 99% of TTIs
have exactly zero error.
"""

from repro.analysis.report import print_tables, series_table
from repro.experiments import fig08_reg_error as fig8


def test_fig08_reg_error_ccdf(once):
    srsran, amarisoft = once(fig8.run, duration_s=4.0)
    result = fig8.to_result(srsran, amarisoft)
    print()
    print_tables([
        fig8.table(srsran, "Fig 8a - REG errors, srsRAN"),
        fig8.table(amarisoft, "Fig 8b - REG errors, Amarisoft"),
        series_table("Fig 8b CCDF (64 UEs)",
                     amarisoft[-1].ccdf(), "REG error", "CCDF",
                     max_rows=8),
    ])
    print("summary:", {k: round(v, 4) for k, v in result.summary.items()})

    # Shape: errors are overwhelmingly zero and small on average.
    assert result.summary["zero_fraction"] > 0.98
    assert result.summary["mean_reg_error"] < 5.0
    # Errors only come from missed DCIs, so they are bounded by a grant.
    for series in srsran + amarisoft:
        if series.errors:
            assert max(series.errors) <= 51 * 12
