"""Matching NR-Scope decodes against gNB ground truth (section 5.2.1).

"We match the number of DCIs captured by NR-Scope and srsRAN's log using
the timestamp and the TTI index, through which we calculate a DCI
decoding miss rate."  The matcher keys both sides by
``(slot index, RNTI, direction)`` and reports matches, misses (in the
log, not decoded) and phantoms (decoded, not in the log — with the CRC
gate these should not occur, and a test asserts they do not).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.telemetry import TelemetryRecord
from repro.gnb.gnb import DciRecord


class MatchingError(ValueError):
    """Raised for malformed match inputs."""


@dataclass(frozen=True)
class MatchKey:
    """Identity of one DCI for matching purposes.

    The HARQ process id disambiguates a retransmission and a new-data
    DCI for the same UE landing in the same TTI.
    """

    slot_index: int
    rnti: int
    downlink: bool
    harq_id: int


@dataclass
class MatchResult:
    """Outcome of matching one session against ground truth."""

    matched: list[tuple[DciRecord, TelemetryRecord]] = \
        field(default_factory=list)
    missed: list[DciRecord] = field(default_factory=list)
    phantom: list[TelemetryRecord] = field(default_factory=list)

    @property
    def n_ground_truth(self) -> int:
        return len(self.matched) + len(self.missed)

    @property
    def miss_rate(self) -> float:
        """Fraction of transmitted DCIs the sniffer did not decode."""
        total = self.n_ground_truth
        if total == 0:
            return 0.0
        return len(self.missed) / total

    def reg_errors(self) -> list[int]:
        """|decoded REGs - true REGs| per matched DCI (Fig 8's metric)."""
        return [abs(est.n_regs - gt.grant.n_regs)
                for gt, est in self.matched]


def _truth_key(record: DciRecord) -> MatchKey:
    return MatchKey(slot_index=record.slot_index, rnti=record.rnti,
                    downlink=record.grant.downlink,
                    harq_id=record.dci.harq_id)


def _estimate_key(record: TelemetryRecord) -> MatchKey:
    return MatchKey(slot_index=record.slot_index, rnti=record.rnti,
                    downlink=record.downlink, harq_id=record.harq_id)


def match_dcis(ground_truth: list[DciRecord],
               estimates: list[TelemetryRecord],
               downlink: bool | None = None,
               rnti: int | None = None) -> MatchResult:
    """Match decoded telemetry against the gNB log.

    Filters apply to both sides; a ground-truth DCI can match at most one
    estimate (duplicate decodes of the same key become phantoms).
    """
    result = MatchResult()
    wanted_truth = [r for r in ground_truth
                    if (downlink is None or r.grant.downlink == downlink)
                    and (rnti is None or r.rnti == rnti)]
    wanted_estimates = [r for r in estimates
                        if (downlink is None or r.downlink == downlink)
                        and (rnti is None or r.rnti == rnti)]
    by_key: dict[MatchKey, TelemetryRecord] = {}
    duplicates: list[TelemetryRecord] = []
    for estimate in wanted_estimates:
        key = _estimate_key(estimate)
        if key in by_key:
            duplicates.append(estimate)
        else:
            by_key[key] = estimate
    for truth in wanted_truth:
        estimate = by_key.pop(_truth_key(truth), None)
        if estimate is None:
            result.missed.append(truth)
        else:
            result.matched.append((truth, estimate))
    result.phantom.extend(by_key.values())
    result.phantom.extend(duplicates)
    return result


def per_tti_reg_errors(ground_truth: list[DciRecord],
                       estimates: list[TelemetryRecord],
                       downlink: bool = True) -> list[int]:
    """REG-count error per TTI, aggregated over all UEs (Fig 8).

    The paper compares the total number of REGs decoded within each TTI
    against the log; a missed DCI therefore shows up as that whole
    grant's REGs.
    """
    truth_by_slot: dict[int, int] = {}
    for record in ground_truth:
        if record.grant.downlink != downlink:
            continue
        truth_by_slot[record.slot_index] = \
            truth_by_slot.get(record.slot_index, 0) + record.grant.n_regs
    est_by_slot: dict[int, int] = {}
    for record in estimates:
        if record.downlink != downlink:
            continue
        est_by_slot[record.slot_index] = \
            est_by_slot.get(record.slot_index, 0) + record.n_regs
    slots = sorted(set(truth_by_slot) | set(est_by_slot))
    return [abs(truth_by_slot.get(slot, 0) - est_by_slot.get(slot, 0))
            for slot in slots]
