"""The sniffer's RF front end: capture, AGC and resampling.

Models the USRP-facing block of the paper's Fig 4 pipeline ("Resample and
AGC").  The virtual radio captures the gNB's transmitted slot grid, adds
receiver noise for the sniffer's link budget, and normalises levels the
way an AGC loop would before handing one slot of samples to the workers.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.phy.ofdm import OfdmConfig, demodulate_slot, modulate_slot
from repro.phy.resource_grid import ResourceGrid
from repro.radio.medium import Link


class FrontEndError(ValueError):
    """Raised for invalid capture parameters."""


@dataclass
class AutomaticGainControl:
    """A first-order AGC loop tracking a target RMS level.

    ``gain`` converges geometrically toward ``target_rms / input_rms``;
    the smoothing mirrors hardware AGC settling over a few slots.
    """

    target_rms: float = 1.0
    smoothing: float = 0.5
    gain: float = 1.0

    def process(self, samples: np.ndarray) -> np.ndarray:
        """Scale one slot of samples, updating the loop gain."""
        arr = np.asarray(samples, dtype=np.complex128)
        rms = float(np.sqrt(np.mean(np.abs(arr) ** 2)))
        if rms > 1e-12:
            desired = self.target_rms / rms
            self.gain += self.smoothing * (desired - self.gain)
        return arr * self.gain


def resample(samples: np.ndarray, ratio: float) -> np.ndarray:
    """Rational-free linear resampling by ``ratio`` (output/input rate).

    The paper only needs resampling for the TwinRX daughterboard whose
    ADC rate does not land FFT bins on subcarriers; linear interpolation
    is adequate at the oversampling factors involved and keeps the
    dependency surface at numpy.
    """
    if ratio <= 0:
        raise FrontEndError(f"resample ratio must be positive: {ratio}")
    arr = np.asarray(samples, dtype=np.complex128).ravel()
    if math.isclose(ratio, 1.0) or arr.size == 0:
        return arr.copy()
    n_out = int(round(arr.size * ratio))
    src = np.linspace(0.0, arr.size - 1, n_out)
    real = np.interp(src, np.arange(arr.size), arr.real)
    imag = np.interp(src, np.arange(arr.size), arr.imag)
    return real + 1j * imag


@dataclass
class VirtualUsrp:
    """Captures one slot of air interface per call.

    ``capture_grid`` is the fast path used in grid-fidelity simulations:
    noise is applied directly in the frequency domain.  ``capture_iq``
    exercises the full OFDM modulate -> AWGN -> AGC -> demodulate path
    for the experiments that need time-domain realism.
    """

    link: Link
    ofdm: OfdmConfig
    seed: int = 0
    agc: AutomaticGainControl = field(default_factory=AutomaticGainControl)
    resample_ratio: float = 1.0

    def __post_init__(self) -> None:
        self._rng = np.random.default_rng(self.seed)

    @property
    def noise_variance(self) -> float:
        """Per-RE complex noise variance of this capture chain."""
        return self.link.noise_variance()

    def capture_grid(self, transmitted: ResourceGrid) -> ResourceGrid:
        """Frequency-domain capture: transmitted grid + receiver noise."""
        return transmitted.clone_with_noise(self.link.snr_db, self._rng)

    def capture_iq(self, transmitted: ResourceGrid) -> ResourceGrid:
        """Full time-domain capture through OFDM, AWGN, resampler, AGC."""
        if transmitted.n_subcarriers != self.ofdm.n_subcarriers:
            raise FrontEndError(
                f"grid width {transmitted.n_subcarriers} does not match"
                f" front end {self.ofdm.n_subcarriers}")
        samples = modulate_slot(transmitted, self.ofdm)
        noise_var = self.noise_variance
        scale = np.sqrt(noise_var / 2.0)
        samples = samples + self._rng.normal(0, scale, samples.size) \
            + 1j * self._rng.normal(0, scale, samples.size)
        if not math.isclose(self.resample_ratio, 1.0):
            # Out to the daughterboard rate and back onto the FFT raster.
            samples = resample(resample(samples, self.resample_ratio),
                               1.0 / self.resample_ratio)
            samples = samples[:self.ofdm.samples_per_slot]
            if samples.size < self.ofdm.samples_per_slot:
                samples = np.pad(samples,
                                 (0, self.ofdm.samples_per_slot - samples.size))
        samples = self.agc.process(samples)
        grid = demodulate_slot(samples, self.ofdm)
        # Undo the AGC's scaling so downstream LLRs stay calibrated: the
        # receiver knows its own gain.
        if self.agc.gain > 1e-12:
            grid.data /= self.agc.gain
        return grid
