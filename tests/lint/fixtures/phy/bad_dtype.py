"""R008 fixture: dtype-less numpy allocations in a PHY hot path."""

import numpy as np


def scratch_buffers(n):
    iq = np.zeros(n)
    work = np.empty((n, 4))
    window = np.ones(n)
    fill = np.full((n, 2), 0.5)
    pinned = np.zeros(n, dtype=np.complex64)
    inherited = np.zeros_like(pinned)
    return iq, work, window, fill, pinned, inherited
