#!/usr/bin/env python3
"""Spare-capacity feedback to an application server (paper section 5.4.1
and 6).

Two UEs share the Mosolab cell.  NR-Scope estimates each UE's used and
fair-share spare bit rate every 250 ms and pushes it through the
feedback service — the "UE can instruct NR-Scope to send channel
feedback to a sender" use case, arriving faster than half an RTT
because it skips the RAN bottleneck.

A toy rate controller consumes the feedback: it sets its target bitrate
to current + 0.8 x spare, the kind of millisecond-scale decision the
paper motivates for cloud gaming and interactive video.

Run:  python examples/spare_capacity_monitor.py
"""

from repro import MOSOLAB_PROFILE, NRScope, Simulation
from repro.core.feedback import FeedbackMessage, FeedbackService

REPORT_INTERVAL_S = 0.25
SESSION_S = 4.0


class AdaptiveSender:
    """A server-side rate controller driven by NR-Scope feedback."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.target_bps = 1e6
        self.history: list[tuple[float, float]] = []

    def on_feedback(self, message: FeedbackMessage) -> None:
        headroom = 0.8 * message.spare_capacity_bps
        self.target_bps = message.throughput_bps + headroom
        self.history.append((message.arrives_at_s, self.target_bps))


def main() -> None:
    sim = Simulation.build(MOSOLAB_PROFILE, n_ues=2, seed=7,
                           traffic="video", channel="pedestrian",
                           rate_bps=5e6)
    scope = NRScope.attach(sim, snr_db=18.0)
    service = FeedbackService(uplink_latency_s=0.008)
    senders: dict[int, AdaptiveSender] = {}

    # Warm up until the RACH sniffer has found both UEs.
    sim.run(seconds=0.2)
    for rnti in scope.tracked_rntis:
        sender = AdaptiveSender(f"server-for-0x{rnti:04x}")
        senders[rnti] = sender
        service.subscribe(rnti, sender.on_feedback)

    slot_s = MOSOLAB_PROFILE.slot_duration_s
    print(f"{'t s':>6}  {'UE':>8}  {'used Mbps':>10}  {'spare Mbps':>10}  "
          f"{'sender target Mbps':>18}")
    next_report = REPORT_INTERVAL_S
    while sim.now_s < SESSION_S:
        sim.run(seconds=REPORT_INTERVAL_S)
        now = sim.now_s
        for rnti in scope.tracked_rntis:
            used = scope.throughput.rate_bps(rnti, now)
            spare_series = scope.spare.spare_rate_series(rnti, slot_s)
            recent = [v for t, v in spare_series
                      if t >= now - REPORT_INTERVAL_S]
            spare = sum(recent) / len(recent) if recent else 0.0
            mcs = scope.telemetry.mcs_distribution(rnti)
            service.publish(
                now, rnti, throughput_bps=used,
                spare_capacity_bps=spare,
                mcs_index=mcs[-1] if mcs else 0,
                retransmission_ratio=scope.telemetry
                .retransmission_ratio(rnti))
            sender = senders.get(rnti)
            target = sender.target_bps if sender else 0.0
            print(f"{now:6.2f}  0x{rnti:04x}  {used / 1e6:10.2f}  "
                  f"{spare / 1e6:10.2f}  {target / 1e6:18.2f}")
        next_report += REPORT_INTERVAL_S

    print(f"\nfeedback messages delivered: {service.messages_sent} "
          f"(one-way latency {service.uplink_latency_s * 1e3:.0f} ms, "
          f"no RAN involvement)")


if __name__ == "__main__":
    main()
