"""Waveform-level cell acquisition: PSS/SSS search then PBCH decode.

This is the paper's section 3.1.1 done at signal level: the frame
synchroniser finds the SSB in raw samples and yields the physical cell
identity; the PBCH decode that follows recovers the MIB through the
real polar/CRC chain.  ``NRScope`` normally receives broadcast messages
at the message layer (DESIGN.md); this module provides the drop-in
waveform bootstrap for sessions that start from IQ capture.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.phy.pbch import PBCH_N_SYMBOLS, decode_pbch, encode_pbch
from repro.phy.sync import FrameSynchronizer, SYNC_SEQUENCE_LEN, \
    SyncResult, render_ssb
from repro.rrc.codec import CodecError
from repro.rrc.messages import Mib, decode_message


class AcquisitionError(ValueError):
    """Raised for malformed acquisition inputs."""


def render_cell_broadcast(cell_id: int, mib: Mib, pad_before: int = 0,
                          pad_after: int = 0) -> np.ndarray:
    """One SSB burst: [zeros | PSS | SSS | PBCH | zeros] time samples.

    The gNB side of waveform acquisition; PBCH QPSK symbols follow the
    synchronisation sequences directly (one sample per symbol — the
    correlator and decoder are agnostic to the OFDM mapping).
    """
    burst = render_ssb(cell_id, pad_before=pad_before)
    payload = mib.encode()
    pbch = encode_pbch(payload, cell_id)
    return np.concatenate([burst.samples, pbch,
                           np.zeros(pad_after, dtype=np.complex128)])


@dataclass(frozen=True)
class AcquisitionResult:
    """Outcome of a full waveform cell acquisition."""

    sync: SyncResult
    mib: Mib

    @property
    def cell_id(self) -> int:
        return self.sync.cell_id


def acquire_cell(samples: np.ndarray, mib_payload_len: int,
                 noise_var: float,
                 synchronizer: FrameSynchronizer | None = None) \
        -> AcquisitionResult | None:
    """Find a cell in raw samples and decode its MIB.

    Returns None when either stage fails: no PSS/SSS peak clears the
    threshold, the PBCH CRC rejects, or the decoded bits are not a MIB.
    """
    if mib_payload_len <= 0:
        raise AcquisitionError(
            f"invalid MIB payload length: {mib_payload_len}")
    buffer = np.asarray(samples, dtype=np.complex128).ravel()
    sync = (synchronizer or FrameSynchronizer()).search(buffer)
    if sync is None:
        return None
    pbch_start = sync.sample_offset + 2 * SYNC_SEQUENCE_LEN
    pbch_end = pbch_start + PBCH_N_SYMBOLS
    if pbch_end > buffer.size:
        return None
    pbch_symbols = buffer[pbch_start:pbch_end]
    payload = decode_pbch(pbch_symbols, mib_payload_len, sync.cell_id,
                          noise_var)
    if payload is None:
        return None
    try:
        message = decode_message(payload)
    except CodecError:
        return None
    if not isinstance(message, Mib):
        return None
    return AcquisitionResult(sync=sync, mib=message)
