"""SARIF 2.1.0 emission for nrlint findings.

GitHub code scanning (and most IDE SARIF viewers) ingest the Static
Analysis Results Interchange Format.  This module renders a lint run —
the post-baseline *new* findings plus the rule catalog that produced
them — as a single-run SARIF log.  URIs are repo-relative so the
upload action can map results onto PR diffs; columns are converted
from nrlint's 0-based ``col`` to SARIF's 1-based ``startColumn``.
"""

from __future__ import annotations

import json
from typing import Iterable, Sequence

from repro.lint.findings import Finding
from repro.lint.registry import Rule

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)

#: Reported as the analysis tool in ``tool.driver``.
TOOL_NAME = "nrlint"
TOOL_URI = "https://github.com/nr-scope/repro"


def _clean_uri(path: str) -> str:
    """A forward-slash repo-relative URI from a scan path."""
    uri = path.replace("\\", "/")
    while uri.startswith("./"):
        uri = uri[2:]
    return uri


def _rule_descriptor(rule: Rule) -> dict[str, object]:
    """A ``reportingDescriptor`` for the rules catalog."""
    doc = (type(rule).__doc__ or rule.title).strip().splitlines()[0]
    return {
        "id": rule.rule_id,
        "name": type(rule).__name__,
        "shortDescription": {"text": rule.title},
        "fullDescription": {"text": doc},
        "defaultConfiguration": {"level": "error"},
    }


def _result(finding: Finding, rule_index: dict[str, int]) \
        -> dict[str, object]:
    """A SARIF ``result`` for one finding."""
    region: dict[str, object] = {
        "startLine": finding.line,
        "startColumn": finding.col + 1,
    }
    if finding.snippet:
        region["snippet"] = {"text": finding.snippet}
    result: dict[str, object] = {
        "ruleId": finding.rule_id,
        "level": "error",
        "message": {"text": finding.message},
        "locations": [{
            "physicalLocation": {
                "artifactLocation": {
                    "uri": _clean_uri(finding.path),
                    "uriBaseId": "%SRCROOT%",
                },
                "region": region,
            },
        }],
    }
    index = rule_index.get(finding.rule_id)
    if index is not None:
        result["ruleIndex"] = index
    return result


def to_sarif(findings: Iterable[Finding],
             rules: Sequence[Rule]) -> dict[str, object]:
    """Render findings and the rule catalog as a SARIF 2.1.0 log."""
    descriptors = [_rule_descriptor(rule) for rule in
                   sorted(rules, key=lambda r: r.rule_id)]
    rule_index = {d["id"]: i for i, d in enumerate(descriptors)}
    return {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [{
            "tool": {
                "driver": {
                    "name": TOOL_NAME,
                    "informationUri": TOOL_URI,
                    "rules": descriptors,
                },
            },
            "results": [_result(f, rule_index) for f in findings],
        }],
    }


def render_sarif(findings: Iterable[Finding],
                 rules: Sequence[Rule]) -> str:
    """The SARIF log as pretty-printed JSON text."""
    return json.dumps(to_sarif(findings, rules), indent=2) + "\n"
