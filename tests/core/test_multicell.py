"""Tests for the multi-cell fusion library (paper section 7)."""

import pytest

from repro import NRScope, Simulation
from repro.core.multicell import (
    FusedStream,
    MultiCellController,
    correlate_streams,
    detect_handovers,
)
from repro.gnb.cell_config import AMARISOFT_PROFILE, SRSRAN_PROFILE, \
    TMOBILE_N25_PROFILE


def build_controller(profiles=(SRSRAN_PROFILE, AMARISOFT_PROFILE),
                     seed=61):
    controller = MultiCellController()
    for index, profile in enumerate(profiles):
        sim = Simulation.build(profile, n_ues=0, seed=seed + index)
        scope = NRScope.attach(sim, snr_db=20.0)
        controller.add_cell(profile.name, sim, scope)
    return controller


class TestController:
    def test_cells_registered(self):
        controller = build_controller()
        assert controller.cells == ["amarisoft", "srsran"]
        with pytest.raises(Exception):
            controller.stream("nonexistent")

    def test_duplicate_cell_rejected(self):
        controller = build_controller()
        sim = Simulation.build(SRSRAN_PROFILE, n_ues=0, seed=99)
        scope = NRScope.attach(sim, snr_db=20.0)
        with pytest.raises(Exception):
            controller.add_cell("srsran", sim, scope)

    def test_lockstep_time(self):
        controller = build_controller()
        controller.run(seconds=0.5)
        for name in controller.cells:
            assert controller.stream(name).sim.now_s == \
                pytest.approx(0.5, abs=1e-3)

    def test_mixed_numerology_lockstep(self):
        # 30 kHz (0.5 ms TTI) next to 15 kHz (1 ms TTI).
        controller = build_controller(
            profiles=(SRSRAN_PROFILE, TMOBILE_N25_PROFILE))
        controller.run(seconds=0.25)
        srsran = controller.stream("srsran").sim
        tmobile = controller.stream("tmobile-n25").sim
        assert srsran.slots_run == 2 * tmobile.slots_run

    def test_attach_device_connects(self):
        controller = build_controller()
        controller.attach_device("srsran")
        controller.run(seconds=0.3)
        scope = controller.stream("srsran").scope
        assert len(scope.tracked_rntis) == 1

    def test_add_cell_auto_attaches_scope(self):
        controller = MultiCellController()
        sim = Simulation.build(SRSRAN_PROFILE, n_ues=0, seed=61)
        controller.add_cell("srsran", sim, snr_db=20.0)
        controller.attach_device("srsran")
        controller.run(seconds=0.3)
        scope = controller.stream("srsran").scope
        assert scope.runtime_stats.executor == "inline"
        assert len(scope.tracked_rntis) == 1

    def test_controller_executor_reaches_per_cell_runtimes(self):
        controller = MultiCellController(executor="threaded",
                                         n_workers=2)
        for index, profile in enumerate((SRSRAN_PROFILE,
                                         AMARISOFT_PROFILE)):
            sim = Simulation.build(profile, n_ues=1, seed=61 + index)
            controller.add_cell(profile.name, sim, snr_db=20.0)
        controller.run(seconds=0.3)
        stats = controller.runtime_stats()
        assert sorted(stats) == ["amarisoft", "srsran"]
        for cell_stats in stats.values():
            assert cell_stats.executor == "threaded"
            assert cell_stats.slots_completed == \
                cell_stats.slots_submitted
            assert cell_stats.slots_dropped == 0

    def test_runtime_stats_aggregates_across_cells(self):
        controller = MultiCellController()
        for index, profile in enumerate((SRSRAN_PROFILE,
                                         AMARISOFT_PROFILE)):
            sim = Simulation.build(profile, n_ues=1, seed=61 + index)
            controller.add_cell(profile.name, sim, snr_db=20.0)
        controller.run(seconds=0.3)
        stats = controller.runtime_stats()
        assert sorted(stats) == ["amarisoft", "srsran"]
        # Each cell's snapshot is an independent runtime's: per-cell
        # slot counts match that cell's own simulation clock, and the
        # fleet total is their sum.
        total = 0
        for name, cell_stats in stats.items():
            sim = controller.stream(name).sim
            assert cell_stats.slots_submitted == sim.slots_run
            assert cell_stats.slots_completed == \
                cell_stats.slots_submitted
            stage_names = [s.name for s in cell_stats.stages]
            assert "dci" in stage_names and "sinks" in stage_names
            total += cell_stats.slots_completed
        assert total == sum(controller.stream(n).sim.slots_run
                            for n in controller.cells)

    def test_shared_obs_bus_labels_cells(self):
        from repro.obs import ObsContext, RingReporter, validate_events

        ring = RingReporter()
        obs = ObsContext.create([ring], run_id="fleet")
        controller = MultiCellController(obs=obs)
        for index, profile in enumerate((SRSRAN_PROFILE,
                                         AMARISOFT_PROFILE)):
            sim = Simulation.build(profile, n_ues=1, seed=61 + index)
            controller.add_cell(profile.name, sim, snr_db=20.0)
        controller.run(seconds=0.2)
        for name in controller.cells:
            controller.stream(name).scope.close()
        # One globally sequenced stream, each event labelled with the
        # cell that produced it.
        assert validate_events(ring.events) == []
        cells_seen = {e.get("cell") for e in ring.events}
        assert cells_seen == {"amarisoft", "srsran"}
        starts = [e for e in ring.events
                  if e["name"] == "session.start"]
        assert len(starts) == 2


class TestHandover:
    def test_handover_detected(self):
        controller = build_controller()
        device = controller.attach_device("srsran", traffic="bulk")
        controller.run(seconds=1.0)
        controller.handover(device, "srsran", "amarisoft",
                            traffic="bulk")
        controller.run(seconds=1.0)

        streams = [controller.stream(n) for n in controller.cells]
        events = detect_handovers(streams, max_gap_s=0.5)
        assert len(events) == 1
        event = events[0]
        assert event.from_cell == "srsran"
        assert event.to_cell == "amarisoft"
        assert 0.0 <= event.gap_s <= 0.5
        assert event.left_at_s == pytest.approx(1.0, abs=0.2)

    def test_no_handover_without_movement(self):
        controller = build_controller()
        controller.attach_device("srsran", traffic="bulk")
        controller.attach_device("amarisoft", traffic="bulk")
        controller.run(seconds=1.0)
        streams = [controller.stream(n) for n in controller.cells]
        # Both devices stay active to the end: no departures.
        assert detect_handovers(streams) == []

    def test_gap_window_respected(self):
        controller = build_controller()
        device = controller.attach_device("srsran", traffic="bulk")
        controller.run(seconds=0.8)
        # Leave, wait far longer than the window, then join the other.
        controller.stream("srsran").sim.gnb.remove_ue(device)
        controller.run(seconds=1.5)
        controller.attach_device("amarisoft", traffic="bulk")
        controller.run(seconds=0.6)
        streams = [controller.stream(n) for n in controller.cells]
        assert detect_handovers(streams, max_gap_s=0.5) == []


class TestCarrierAggregationFusion:
    def test_correlation_pairs_ca_legs(self):
        controller = build_controller()
        # One carrier-aggregated device whose legs share a traffic
        # pattern, plus an unrelated bursty UE on each cell.
        legs = controller.attach_ca_device(["srsran", "amarisoft"],
                                           traffic="onoff", rate_bps=6e6)
        controller.attach_device("srsran", traffic="onoff",
                                 rate_bps=6e6)
        controller.attach_device("amarisoft", traffic="onoff",
                                 rate_bps=6e6)
        controller.run(seconds=3.0)

        a = controller.stream("srsran")
        b = controller.stream("amarisoft")
        pairs = correlate_streams(a, b, bin_s=0.1)
        assert pairs, "no correlation candidates found"
        for _, _, corr in pairs:
            assert -1.0001 <= corr <= 1.0001
        # The CA device's legs are the best-correlated pair.
        rnti_a = a.sim.gnb.ues[legs["srsran"]].rnti
        rnti_b = b.sim.gnb.ues[legs["amarisoft"]].rnti
        best_a, best_b, best_corr = pairs[0]
        assert (best_a, best_b) == (rnti_a, rnti_b)
        assert best_corr > 0.6

    def test_ca_needs_two_cells(self):
        controller = build_controller()
        with pytest.raises(Exception):
            controller.attach_ca_device(["srsran"])

    def test_fused_stream_sums_legs(self):
        controller = build_controller()
        controller.attach_device("srsran", traffic="bulk", rate_bps=3e6)
        controller.attach_device("amarisoft", traffic="bulk",
                                 rate_bps=3e6)
        controller.run(seconds=1.5)
        a = controller.stream("srsran")
        b = controller.stream("amarisoft")
        fused = FusedStream(device="phone-1")
        fused.add_leg(a, a.scope.tracked_rntis[0])
        fused.add_leg(b, b.scope.tracked_rntis[0])

        total = fused.total_bits()
        leg_a = a.scope.telemetry.bits_between(
            a.scope.tracked_rntis[0], 0.0, a.sim.now_s)
        leg_b = b.scope.telemetry.bits_between(
            b.scope.tracked_rntis[0], 0.0, b.sim.now_s)
        assert total == leg_a + leg_b
        series = fused.throughput_series(window_s=0.5)
        assert series
        # The fused rate roughly doubles one leg's.
        peak = max(rate for _, rate in series)
        assert peak > 4e6

    def test_empty_fused_stream_rejected(self):
        with pytest.raises(Exception):
            FusedStream(device="x").throughput_series(0.5)