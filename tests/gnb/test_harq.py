"""Tests for gNB-side HARQ entities."""

import pytest

from repro.gnb.harq import HarqEntity, HarqError, HarqProcess, RV_SEQUENCE


class TestHarqProcess:
    def test_ndi_toggles_on_new_data(self):
        process = HarqProcess(0)
        first = process.start_new(1000)
        process.ack()
        second = process.start_new(1000)
        assert first != second

    def test_retransmit_keeps_ndi(self):
        process = HarqProcess(0)
        ndi = process.start_new(1000)
        retx_ndi, rv = process.retransmit()
        assert retx_ndi == ndi
        assert rv == RV_SEQUENCE[1]

    def test_rv_sequence_progresses(self):
        process = HarqProcess(0)
        process.start_new(1000)
        rvs = [process.retransmit()[1] for _ in range(5)]
        assert rvs[:3] == [2, 3, 1]
        assert rvs[3] == rvs[4] == RV_SEQUENCE[-1]

    def test_cannot_retransmit_idle(self):
        with pytest.raises(HarqError):
            HarqProcess(0).retransmit()

    def test_rejects_empty_block(self):
        with pytest.raises(HarqError):
            HarqProcess(0).start_new(0)


class TestHarqEntity:
    def test_sixteen_processes(self):
        entity = HarqEntity()
        assert len(entity.processes) == 16

    def test_new_transmissions_use_free_processes(self):
        entity = HarqEntity()
        seen = set()
        for _ in range(16):
            harq_id, _, rv = entity.transmit_new(500)
            assert rv == 0
            seen.add(harq_id)
        assert len(seen) == 16
        assert entity.transmit_new(500) is None  # all busy

    def test_ack_frees_process(self):
        entity = HarqEntity()
        harq_id, _, _ = entity.transmit_new(500)
        assert entity.handle_feedback(harq_id, ack=True) == "acked"
        assert entity.free_process() is not None

    def test_nack_then_retransmit(self):
        entity = HarqEntity()
        harq_id, ndi, _ = entity.transmit_new(500)
        assert entity.handle_feedback(harq_id, ack=False) == "retransmit"
        retx_id, retx_ndi, rv = entity.transmit_retx(harq_id)
        assert retx_id == harq_id
        assert retx_ndi == ndi
        assert rv == 2

    def test_drop_after_max_retx(self):
        entity = HarqEntity(max_retx=2)
        harq_id, _, _ = entity.transmit_new(500)
        for _ in range(2):
            assert entity.handle_feedback(harq_id, ack=False) == \
                "retransmit"
            entity.transmit_retx(harq_id)
        assert entity.handle_feedback(harq_id, ack=False) == "dropped"
        assert entity.dropped_blocks == 1
        assert entity.free_process() is not None

    def test_retransmission_ratio(self):
        entity = HarqEntity()
        harq_id, _, _ = entity.transmit_new(500)
        entity.handle_feedback(harq_id, ack=False)
        entity.transmit_retx(harq_id)
        entity.handle_feedback(harq_id, ack=True)
        assert entity.retransmission_ratio == pytest.approx(0.5)

    def test_ratio_empty(self):
        assert HarqEntity().retransmission_ratio == 0.0

    def test_bad_harq_id(self):
        with pytest.raises(HarqError):
            HarqEntity().handle_feedback(16, ack=True)

    def test_bad_process_count(self):
        with pytest.raises(HarqError):
            HarqEntity(n_processes=17)

    def test_pending_retransmissions_listed(self):
        entity = HarqEntity()
        harq_id, _, _ = entity.transmit_new(500)
        entity.handle_feedback(harq_id, ack=False)
        entity.transmit_retx(harq_id)
        pending = entity.pending_retransmissions()
        assert [p.process_id for p in pending] == [harq_id]
