"""Tests for the mobility scenarios (static/moving/blocked)."""

import numpy as np
import pytest

from repro.radio.medium import Position
from repro.ue.mobility import (
    BlockedUe,
    MobilityError,
    MovingUe,
    StaticUe,
    scenario,
)

SLOT_S = 0.5e-3


class TestStatic:
    def test_no_adjustment_ever(self):
        model = StaticUe()
        assert all(model.step(i) == 0.0 for i in range(100))
        assert model.name == "static"


class TestMoving:
    def make(self, speed=1.4, range_m=20.0):
        return MovingUe(start=Position(10.0, 0.0), gnb=Position(0.0, 0.0),
                        speed_mps=speed, slot_duration_s=SLOT_S,
                        range_m=range_m)

    def test_snr_varies_smoothly(self):
        model = self.make()
        deltas = [model.step(i) for i in range(200000)]  # 100 s walk
        arr = np.array(deltas)
        assert arr.min() < -1.0   # walked away: real loss
        assert arr.max() > 1.0    # walked closer: real gain
        steps = np.abs(np.diff(arr))
        assert steps.max() < 0.02  # no teleporting at walking speed

    def test_bounces_within_range(self):
        model = self.make(speed=50.0, range_m=5.0)
        for i in range(100000):
            model.step(i)
            assert abs(model._offset_m) <= 5.0 + 1e-6

    def test_rejects_negative_speed(self):
        with pytest.raises(MobilityError):
            self.make(speed=-1.0)

    def test_name(self):
        assert self.make().name == "moving"


class TestBlocked:
    def test_two_levels_only(self):
        model = BlockedUe(slot_duration_s=SLOT_S, blockage_loss_db=10.0,
                          seed=1)
        deltas = {model.step(i) for i in range(100000)}
        assert deltas == {0.0, -10.0}

    def test_dwell_fractions(self):
        model = BlockedUe(slot_duration_s=SLOT_S, mean_blocked_s=1.0,
                          mean_clear_s=1.0, seed=2)
        blocked = sum(model.step(i) < 0 for i in range(200000))
        assert 0.3 < blocked / 200000 < 0.7

    def test_rejects_bad_dwell(self):
        with pytest.raises(MobilityError):
            BlockedUe(slot_duration_s=SLOT_S, mean_blocked_s=0)

    def test_name(self):
        assert BlockedUe(slot_duration_s=SLOT_S).name == "blocked"


class TestScenarioFactory:
    def test_names_roundtrip(self):
        for name in ("static", "moving", "blocked"):
            assert scenario(name, SLOT_S).name == name

    def test_unknown(self):
        with pytest.raises(MobilityError):
            scenario("teleporting", SLOT_S)
