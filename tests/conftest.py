"""Shared fixtures for the repro test suite."""

import numpy as np
import pytest


@pytest.fixture
def rng() -> np.random.Generator:
    """A deterministic random generator; reseed per test for isolation."""
    return np.random.default_rng(0xC0FFEE)
