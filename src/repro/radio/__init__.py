"""Radio medium and sniffer front-end models."""

from repro.radio.iq import AutomaticGainControl, VirtualUsrp, resample
from repro.radio.medium import Link, PathLossModel, Position, RadioMedium, \
    lab_medium

__all__ = [
    "AutomaticGainControl", "Link", "PathLossModel", "Position",
    "RadioMedium", "VirtualUsrp", "lab_medium", "resample",
]
