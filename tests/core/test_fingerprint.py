"""Tests for RAN fingerprinting (paper section 6, Security)."""

import pytest

from repro import NRScope, Simulation
from repro.core.fingerprint import (
    FingerprintError,
    FingerprintLibrary,
    anomaly_score,
    classify_scheduler,
    fingerprint_distance,
    fingerprint_session,
    interleaving_runs,
)
from repro.gnb.cell_config import AMARISOFT_PROFILE, SRSRAN_PROFILE
from repro.ue.population import Session


def run_session(profile=SRSRAN_PROFILE, scheduler="rr", seed=101,
                seconds=1.5, n_ues=4, channel="pedestrian", **kwargs):
    sim = Simulation.build(profile, n_ues=n_ues, seed=seed,
                           scheduler=scheduler, traffic="bulk",
                           channel=channel, **kwargs)
    scope = NRScope.attach(sim, snr_db=20.0)
    sim.run(seconds=seconds)
    return sim, scope


class TestFingerprint:
    def test_basic_shape(self):
        _, scope = run_session()
        fingerprint = fingerprint_session(scope.telemetry)
        assert fingerprint.n_ues == 4
        assert fingerprint.n_dcis > 100
        assert 0 < fingerprint.mcs_mean <= 28
        assert sum(fingerprint.tdra_distribution.values()) == \
            pytest.approx(1.0)
        assert sum(fingerprint.aggregation_distribution.values()) == \
            pytest.approx(1.0)
        assert fingerprint.as_vector().shape == (26,)

    def test_thin_session_rejected(self):
        from repro.core.telemetry import TelemetryLog
        with pytest.raises(FingerprintError):
            fingerprint_session(TelemetryLog())

    def test_same_cell_fingerprints_close(self):
        _, a = run_session(seed=101)
        _, b = run_session(seed=102)
        _, other = run_session(profile=AMARISOFT_PROFILE, seed=103,
                               ue_snr_db=14.0, channel="vehicle")
        fa = fingerprint_session(a.telemetry)
        fb = fingerprint_session(b.telemetry)
        fo = fingerprint_session(other.telemetry)
        assert fingerprint_distance(fa, fb) < fingerprint_distance(fa, fo)

    def test_library_identifies_known_cell(self):
        _, srs = run_session(seed=104)
        _, ama = run_session(profile=AMARISOFT_PROFILE, seed=105,
                             ue_snr_db=14.0, channel="vehicle")
        library = FingerprintLibrary()
        library.add("srsran-lab", fingerprint_session(srs.telemetry))
        library.add("amarisoft-lab", fingerprint_session(ama.telemetry))

        _, fresh = run_session(seed=106)
        label, distance = library.identify(
            fingerprint_session(fresh.telemetry))
        assert label == "srsran-lab"
        assert distance < 1.0

    def test_empty_library(self):
        _, scope = run_session(seed=104)
        with pytest.raises(FingerprintError):
            FingerprintLibrary().identify(
                fingerprint_session(scope.telemetry))


class TestSchedulerClassification:
    def test_rr_detected(self):
        _, scope = run_session(scheduler="rr", seed=107)
        runs = interleaving_runs(scope.telemetry)
        assert classify_scheduler(runs) == "round-robin"

    def test_pf_detected_with_skewed_ues(self):
        # PF's signature needs rate disparity: a strong and a weak UE.
        sim = Simulation.build(SRSRAN_PROFILE, n_ues=0, seed=108,
                               scheduler="pf")
        strong = sim.make_ue(0, traffic="bulk", mean_snr_db=26.0,
                             rate_bps=8e6)
        weak = sim.make_ue(1, traffic="bulk", mean_snr_db=6.0,
                           rate_bps=8e6)
        sim.gnb.add_ue(strong)
        sim.gnb.add_ue(weak)
        scope = NRScope.attach(sim, snr_db=20.0)
        sim.run(seconds=1.5)
        runs = interleaving_runs(scope.telemetry)
        assert classify_scheduler(runs) == "proportional-fair"

    def test_empty_runs_rejected(self):
        with pytest.raises(FingerprintError):
            classify_scheduler([])


class TestAnomalyScore:
    def test_normal_cell_scores_low(self):
        sim, scope = run_session(seconds=2.0)
        score = anomaly_score(scope.telemetry, 2.0,
                              scope.counters.msg4_seen)
        assert score < 0.3

    def test_catcher_shaped_cell_scores_high(self):
        """Many attachments, almost no data: high anomaly score."""
        sim = Simulation.build(SRSRAN_PROFILE, n_ues=0, seed=109)
        sessions = [Session(ue_id=i, arrival_s=0.2 * i, holding_s=0.15)
                    for i in range(10)]
        sim.schedule_sessions(sessions, traffic="cbr", rate_bps=1e3)
        scope = NRScope.attach(sim, snr_db=20.0)
        sim.run(seconds=2.5)
        assert scope.counters.msg4_seen >= 5
        score = anomaly_score(scope.telemetry, 2.5,
                              scope.counters.msg4_seen)
        assert score > 0.5

    def test_silent_cell_scores_zero(self):
        from repro.core.telemetry import TelemetryLog
        assert anomaly_score(TelemetryLog(), 10.0, 0) == 0.0

    def test_bad_duration(self):
        from repro.core.telemetry import TelemetryLog
        with pytest.raises(FingerprintError):
            anomaly_score(TelemetryLog(), 0.0, 1)
