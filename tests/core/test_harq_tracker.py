"""Tests for the sniffer-side NDI/HARQ tracker."""

import pytest

from repro.core.harq_tracker import HarqTrackerBank, HarqTrackerError, \
    UeHarqTracker


class TestUeHarqTracker:
    def test_first_observation_is_new_data(self):
        tracker = UeHarqTracker()
        assert not tracker.observe(0, ndi=1, downlink=True)

    def test_toggle_means_new_data(self):
        tracker = UeHarqTracker()
        tracker.observe(0, 0, True)
        assert not tracker.observe(0, 1, True)
        assert not tracker.observe(0, 0, True)

    def test_repeat_means_retransmission(self):
        tracker = UeHarqTracker()
        tracker.observe(3, 1, True)
        assert tracker.observe(3, 1, True)
        assert tracker.retransmission_count == 1

    def test_processes_independent(self):
        tracker = UeHarqTracker()
        tracker.observe(0, 1, True)
        assert not tracker.observe(1, 1, True)  # different process

    def test_directions_independent(self):
        tracker = UeHarqTracker()
        tracker.observe(0, 1, downlink=True)
        assert not tracker.observe(0, 1, downlink=False)

    def test_ratio(self):
        tracker = UeHarqTracker()
        tracker.observe(0, 1, True)   # new
        tracker.observe(0, 1, True)   # retx
        tracker.observe(0, 0, True)   # new
        assert tracker.retransmission_ratio == pytest.approx(1 / 3)
        assert UeHarqTracker().retransmission_ratio == 0.0

    def test_bad_harq_id(self):
        with pytest.raises(HarqTrackerError):
            UeHarqTracker().observe(16, 0, True)

    def test_missed_dci_aliases_as_retx(self):
        """A known failure mode the paper inherits: if the sniffer
        misses one DCI on a process, the next new-data DCI (toggled
        twice in between... i.e. appearing with an equal NDI) is
        misclassified. Two toggles look like a repeat."""
        tracker = UeHarqTracker()
        tracker.observe(0, 1, True)         # seen
        # missed: ndi 0 (new data)          # not observed
        assert tracker.observe(0, 1, True)  # new data, but looks repeated


class TestBank:
    def test_lazily_creates_trackers(self):
        bank = HarqTrackerBank()
        assert not bank.observe(0x4601, 0, 1, True)
        assert bank.rntis() == [0x4601]

    def test_ues_independent(self):
        bank = HarqTrackerBank()
        bank.observe(0x4601, 0, 1, True)
        assert not bank.observe(0x4602, 0, 1, True)

    def test_forget(self):
        bank = HarqTrackerBank()
        bank.observe(0x4601, 0, 1, True)
        bank.forget(0x4601)
        assert bank.rntis() == []
        # After forgetting, the same NDI is new data again.
        assert not bank.observe(0x4601, 0, 1, True)
