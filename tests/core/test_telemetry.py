"""Tests for telemetry records and the session log."""

import pytest

from repro.core.telemetry import TELEMETRY_SCHEMA_VERSION, \
    TelemetryError, TelemetryLog, TelemetryRecord
from repro.phy.dci import Dci, DciFormat, riv_encode
from repro.phy.grant import GrantConfig, dci_to_grant


def make_record(slot=0, time_s=0.0, rnti=0x4601, tbs=1000, downlink=True,
                retx=False, mcs=10):
    return TelemetryRecord(slot_index=slot, time_s=time_s, rnti=rnti,
                           downlink=downlink, tbs_bits=tbs, n_prb=4,
                           n_symbols=12, mcs_index=mcs, harq_id=0, ndi=0,
                           rv=0, is_retransmission=retx,
                           aggregation_level=2)


class TestRecord:
    def test_from_decode(self):
        config = GrantConfig(bwp_n_prb=51)
        dci = Dci(format=DciFormat.DL_1_1, rnti=0x4601,
                  freq_alloc_riv=riv_encode(0, 4, 51), time_alloc=1,
                  mcs=10, ndi=1, rv=0, harq_id=2)
        grant = dci_to_grant(dci, config)
        record = TelemetryRecord.from_decode(5, 0.0025, dci, grant, 2,
                                             is_retransmission=False)
        assert record.tbs_bits == grant.tbs_bits
        assert record.n_regs == 4 * 12
        assert record.downlink

    def test_json_roundtrip(self):
        import json
        record = make_record()
        data = json.loads(record.to_json())
        assert data["v"] == TELEMETRY_SCHEMA_VERSION
        assert TelemetryRecord.from_dict(data) == record

    def test_from_dict_reads_v1_lines(self):
        # A v1 stream has no "v" marker: just the bare record fields.
        import json
        record = make_record()
        data = json.loads(record.to_json())
        del data["v"]
        assert TelemetryRecord.from_dict(data) == record

    def test_from_dict_ignores_future_fields(self):
        # A newer writer may add fields; this reader must skip them.
        import json
        record = make_record()
        data = json.loads(record.to_json())
        data["v"] = TELEMETRY_SCHEMA_VERSION + 1
        data["beam_index"] = 3
        assert TelemetryRecord.from_dict(data) == record

    def test_from_dict_missing_field_raises(self):
        import json
        data = json.loads(make_record().to_json())
        del data["rnti"]
        with pytest.raises(TelemetryError, match="rnti"):
            TelemetryRecord.from_dict(data)


class TestLogQueries:
    def make_log(self):
        log = TelemetryLog()
        for i in range(10):
            log.add(make_record(slot=i, time_s=i * 0.1, tbs=8000))
        for i in range(5):
            log.add(make_record(slot=i, time_s=i * 0.1, rnti=0x4602,
                                tbs=4000, retx=(i % 2 == 1)))
        log.add(make_record(slot=20, time_s=0.35, downlink=False,
                            tbs=2000))
        return log

    def test_counts(self):
        log = self.make_log()
        assert len(log) == 16
        assert log.rntis() == [0x4601, 0x4602]
        assert len(log.for_rnti(0x4601)) == 11
        assert len(log.for_rnti(0x4601, downlink=True)) == 10

    def test_bits_between_excludes_retx(self):
        log = self.make_log()
        with_retx = log.bits_between(0x4602, 0.0, 1.0,
                                     count_retransmissions=True)
        without = log.bits_between(0x4602, 0.0, 1.0)
        assert with_retx == 5 * 4000
        assert without == 3 * 4000

    def test_bitrate_series(self):
        log = self.make_log()
        series = log.bitrate_series(0x4601, window_s=0.5, end_time_s=1.0)
        assert len(series) == 2
        # Records at t = 0.0..0.4 land in the first window.
        assert series[0][1] == pytest.approx(5 * 8000 / 0.5)

    def test_bad_window(self):
        with pytest.raises(TelemetryError):
            self.make_log().bitrate_series(1, 0.0, 1.0)

    def test_mcs_distribution_skips_retx(self):
        log = self.make_log()
        assert len(log.mcs_distribution(0x4602)) == 3

    def test_retransmission_ratio(self):
        log = self.make_log()
        assert log.retransmission_ratio(0x4602) == pytest.approx(2 / 5)
        assert log.retransmission_ratio(0x4601) == 0.0

    def test_jsonl_roundtrip(self, tmp_path):
        log = self.make_log()
        path = tmp_path / "session.jsonl"
        count = log.write_jsonl(path)
        assert count == 16
        reloaded = TelemetryLog.read_jsonl(path)
        assert len(reloaded) == 16
        assert reloaded.records == log.records

    def test_read_jsonl_accepts_v1_file(self, tmp_path):
        # Strip the schema marker to fabricate a pre-versioning log.
        import json
        log = self.make_log()
        path = tmp_path / "v1.jsonl"
        log.write_jsonl(path)
        lines = []
        for line in path.read_text().splitlines():
            data = json.loads(line)
            data.pop("v")
            lines.append(json.dumps(data))
        path.write_text("\n".join(lines) + "\n")
        reloaded = TelemetryLog.read_jsonl(path)
        assert reloaded.records == log.records
