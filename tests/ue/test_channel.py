"""Tests for the fading channels, CQI mapping and BLER model."""

import numpy as np
import pytest

from repro.phy.mcs_tables import mcs_entry
from repro.ue.channel import (
    ChannelError,
    CQI_EFFICIENCY,
    FadingChannel,
    PROFILES,
    block_error_probability,
    cqi_to_efficiency,
    required_snr_db,
    snr_to_cqi,
    transport_block_survives,
)

SLOT_S = 0.5e-3


class TestProfiles:
    def test_paper_channel_set(self):
        # Fig 15's five conditions.
        assert set(PROFILES) == {"normal", "awgn", "pedestrian", "vehicle",
                                 "urban"}

    def test_worse_channels_have_more_spread(self):
        assert PROFILES["awgn"].fading_sigma_db == 0
        assert PROFILES["pedestrian"].fading_sigma_db < \
            PROFILES["vehicle"].fading_sigma_db < \
            PROFILES["urban"].fading_sigma_db

    def test_correlation_decreases_with_doppler(self):
        ped = PROFILES["pedestrian"].correlation(SLOT_S)
        veh = PROFILES["vehicle"].correlation(SLOT_S)
        assert 0 < veh < ped < 1


class TestFadingChannel:
    def test_awgn_is_constant(self):
        channel = FadingChannel("awgn", 20.0, SLOT_S, seed=1)
        snrs = [channel.step() for _ in range(100)]
        assert all(s == snrs[0] for s in snrs)

    def test_mean_tracks_configured_snr(self):
        channel = FadingChannel("pedestrian", 20.0, SLOT_S, seed=2)
        snrs = np.array([channel.step() for _ in range(50000)])
        offset = PROFILES["pedestrian"].mean_offset_db
        # Fading is negatively skewed (deep fades) so allow slack.
        assert snrs.mean() == pytest.approx(20.0 - offset, abs=4.0)

    def test_urban_has_deep_fades(self):
        channel = FadingChannel("urban", 20.0, SLOT_S, seed=3)
        snrs = np.array([channel.step() for _ in range(20000)])
        assert snrs.min() < 0.0
        assert snrs.std() > FadingChannel("pedestrian", 20.0, SLOT_S,
                                          seed=3).profile.fading_sigma_db / 4

    def test_temporal_correlation_slow_vs_fast(self):
        def lag1(name):
            channel = FadingChannel(name, 20.0, SLOT_S, seed=4)
            snrs = np.array([channel.step() for _ in range(20000)])
            x = snrs - snrs.mean()
            return float((x[:-1] * x[1:]).mean() / (x.var() + 1e-12))

        assert lag1("pedestrian") > lag1("vehicle")

    def test_unknown_profile(self):
        with pytest.raises(ChannelError):
            FadingChannel("desert", 20.0, SLOT_S)


class TestCqi:
    def test_monotone_in_snr(self):
        cqis = [snr_to_cqi(snr) for snr in range(-10, 30)]
        assert cqis == sorted(cqis)
        assert cqis[0] == 0
        assert cqis[-1] == 15

    def test_efficiency_table(self):
        assert len(CQI_EFFICIENCY) == 15
        assert cqi_to_efficiency(0) == 0.0
        assert cqi_to_efficiency(15) == pytest.approx(5.5547)
        effs = [cqi_to_efficiency(c) for c in range(1, 16)]
        assert effs == sorted(effs)

    def test_out_of_range(self):
        with pytest.raises(ChannelError):
            cqi_to_efficiency(16)


class TestBler:
    def test_half_at_required_snr(self):
        mcs = mcs_entry(10, "qam64")
        snr = required_snr_db(mcs)
        assert block_error_probability(snr, mcs) == pytest.approx(0.5)

    def test_waterfall(self):
        mcs = mcs_entry(10, "qam64")
        snr = required_snr_db(mcs)
        assert block_error_probability(snr + 3, mcs) < 0.01
        assert block_error_probability(snr - 3, mcs) > 0.99

    def test_higher_mcs_needs_more_snr(self):
        lows = required_snr_db(mcs_entry(2, "qam64"))
        highs = required_snr_db(mcs_entry(27, "qam64"))
        assert highs > lows + 10

    def test_survival_statistics(self, rng):
        mcs = mcs_entry(10, "qam64")
        snr = required_snr_db(mcs)
        survived = sum(transport_block_survives(snr, mcs, rng)
                       for _ in range(2000))
        assert 800 < survived < 1200  # ~50%
