"""Ground-truth matching, metrics and report rendering."""

from repro.analysis.matching import MatchResult, match_dcis, \
    per_tti_reg_errors
from repro.analysis.metrics import ErrorSummary, ccdf_points, cdf_points, \
    coefficient_of_determination, percentile, relative_error, \
    summarize_errors, throughput_error_series
from repro.analysis.report import Table, print_tables, series_table
from repro.analysis.summary import SessionReport, build_session_report

__all__ = [
    "ErrorSummary", "MatchResult", "Table", "ccdf_points", "cdf_points",
    "coefficient_of_determination", "match_dcis", "per_tti_reg_errors",
    "SessionReport", "build_session_report", "percentile",
    "print_tables", "relative_error", "series_table", "summarize_errors",
    "throughput_error_series",
]
