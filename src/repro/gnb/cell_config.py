"""Cell profiles for the paper's four evaluation networks (section 5.1).

Each :class:`CellProfile` carries everything the simulated gNB needs and
everything NR-Scope must discover over the air: band, duplexing, SCS,
bandwidth, BWP, MCS table, CORESET geometry.  The five concrete profiles
match Fig 5/6 and the methodology text:

* ``SRSRAN_PROFILE``    - srsRAN/Open5GS, n41 TDD, 2524.95 MHz, 30 kHz, 20 MHz
* ``MOSOLAB_PROFILE``   - Mosolabs/Aether, n48 TDD, 3561.6 MHz, 30 kHz, 20 MHz
* ``AMARISOFT_PROFILE`` - Amari Callbox, n78 TDD, 3489.42 MHz, 30 kHz, 20 MHz
* ``TMOBILE_N25_PROFILE`` - cell 1: n25 FDD, 1989.85 MHz, 15 kHz, 10 MHz, BWP 1
* ``TMOBILE_N71_PROFILE`` - cell 2: n71 FDD, 622.85 MHz, 15 kHz, 15 MHz, BWP 1
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.constants import SFN_MODULO
from repro.phy.coreset import Coreset, SearchSpace, coreset0_for_bandwidth
from repro.phy.dci import DciSizeConfig
from repro.phy.grant import GrantConfig
from repro.phy.numerology import prb_count_for_bandwidth, slot_duration_s
from repro.rrc.messages import Mib, RachConfig, SearchSpaceConfig, Sib1, \
    TddConfig


class CellConfigError(ValueError):
    """Raised for inconsistent profile parameters."""


@dataclass(frozen=True)
class CellProfile:
    """Static configuration of one 5G SA cell."""

    name: str
    band: str
    is_tdd: bool
    center_frequency_hz: float
    scs_khz: int
    bandwidth_hz: float
    cell_id: int
    bwp_id: int = 0
    mcs_table: str = "qam64"
    max_mimo_layers: int = 1
    tdd: TddConfig = field(default_factory=TddConfig)
    mib_period_frames: int = 8
    sib1_period_frames: int = 16
    n_prb_override: int | None = None

    def __post_init__(self) -> None:
        if self.scs_khz not in (15, 30, 60):
            raise CellConfigError(f"bad SCS: {self.scs_khz}")
        if self.max_mimo_layers < 1:
            raise CellConfigError("need at least one MIMO layer")

    @property
    def n_prb(self) -> int:
        """Carrier width in PRBs (38.101 tables via the numerology helper)."""
        if self.n_prb_override is not None:
            return self.n_prb_override
        return prb_count_for_bandwidth(self.bandwidth_hz, self.scs_khz)

    @property
    def slot_duration_s(self) -> float:
        """TTI length for this cell's numerology."""
        return slot_duration_s(self.scs_khz)

    @property
    def slots_per_second(self) -> int:
        """Scheduling opportunities per second."""
        return int(round(1.0 / self.slot_duration_s))

    def coreset0(self) -> Coreset:
        """CORESET 0 (from the MIB), home of SIB1 scheduling."""
        return coreset0_for_bandwidth(self.n_prb)

    def dedicated_coreset(self) -> Coreset:
        """The UE-dedicated CORESET signalled in MSG 4.

        Placed on symbol 1 so it never collides with CORESET 0 (symbol 0)
        in the same slot's control region.
        """
        n_prb = min(48, (self.n_prb // 6) * 6)
        return Coreset(coreset_id=1, first_prb=0, n_prb=n_prb, n_symbols=1,
                       first_symbol=1, interleaved=True)

    def search_space_config(self) -> SearchSpaceConfig:
        """The MSG 4 search-space element for this cell."""
        coreset = self.dedicated_coreset()
        return SearchSpaceConfig(
            coreset_id=coreset.coreset_id,
            coreset_first_prb=coreset.first_prb,
            coreset_n_prb=coreset.n_prb,
            coreset_n_symbols=coreset.n_symbols,
            coreset_first_symbol=coreset.first_symbol,
            interleaved=coreset.interleaved,
            n_candidates_al1=0, n_candidates_al2=2, n_candidates_al4=2,
            n_candidates_al8=1)

    def ue_search_space(self) -> SearchSpace:
        """The dedicated search space as a PHY object."""
        config = self.search_space_config()
        return SearchSpace(search_space_id=1,
                           coreset=self.dedicated_coreset(),
                           is_common=False,
                           candidates_per_level=config.candidates_per_level())

    def common_search_space(self) -> SearchSpace:
        """The type-0 common search space in CORESET 0 (SIB1, MSG 2/4)."""
        return SearchSpace(search_space_id=0, coreset=self.coreset0(),
                           is_common=True,
                           candidates_per_level={4: 2, 8: 1})

    def dci_size_config(self) -> DciSizeConfig:
        """Field widths for this cell's scheduling DCIs."""
        return DciSizeConfig(n_prb_bwp=self.n_prb,
                             bwp_indicator_bits=1 if self.bwp_id else 0)

    def grant_config(self) -> GrantConfig:
        """TBS-relevant parameters (paper Appendix A inputs)."""
        return GrantConfig(bwp_n_prb=self.n_prb, mcs_table=self.mcs_table,
                           n_layers=self.max_mimo_layers,
                           n_dmrs_per_prb=12, xoverhead_res=0)

    def build_mib(self, sfn: int) -> Mib:
        """The MIB broadcast for a given frame."""
        return Mib(sfn=sfn % SFN_MODULO, scs_common_khz=self.scs_khz,
                   ssb_subcarrier_offset=0, dmrs_typea_position=2,
                   coreset0_index=5, search_space0_index=0)

    def build_sib1(self) -> Sib1:
        """The SIB1 carrying the cell's common configuration."""
        coreset = self.coreset0()
        return Sib1(cell_identity=self.cell_id, n_prb_carrier=self.n_prb,
                    scs_khz=self.scs_khz, is_tdd=self.is_tdd,
                    rach=RachConfig(msg1_scs_khz=self.scs_khz),
                    tdd=self.tdd, initial_bwp_id=self.bwp_id,
                    pdcch_coreset_prbs=coreset.n_prb,
                    pdcch_coreset_symbols=coreset.n_symbols)

    def is_downlink_slot(self, slot_index: int) -> bool:
        """TDD gate for downlink transmission (FDD: always true)."""
        if not self.is_tdd:
            return True
        return self.tdd.is_downlink(slot_index)

    def is_uplink_slot(self, slot_index: int) -> bool:
        """TDD gate for uplink transmission (FDD: always true)."""
        if not self.is_tdd:
            return True
        return self.tdd.is_uplink(slot_index)


SRSRAN_PROFILE = CellProfile(
    name="srsran", band="n41", is_tdd=True,
    center_frequency_hz=2524.95e6, scs_khz=30, bandwidth_hz=20e6,
    cell_id=1, mcs_table="qam64", n_prb_override=51)

MOSOLAB_PROFILE = CellProfile(
    name="mosolab", band="n48", is_tdd=True,
    center_frequency_hz=3561.6e6, scs_khz=30, bandwidth_hz=20e6,
    cell_id=2, mcs_table="qam256", n_prb_override=51)

AMARISOFT_PROFILE = CellProfile(
    name="amarisoft", band="n78", is_tdd=True,
    center_frequency_hz=3489.42e6, scs_khz=30, bandwidth_hz=20e6,
    cell_id=3, mcs_table="qam256", max_mimo_layers=2, n_prb_override=51)

TMOBILE_N25_PROFILE = CellProfile(
    name="tmobile-n25", band="n25", is_tdd=False,
    center_frequency_hz=1989.85e6, scs_khz=15, bandwidth_hz=10e6,
    cell_id=4, bwp_id=1, mcs_table="qam256", n_prb_override=52)

TMOBILE_N71_PROFILE = CellProfile(
    name="tmobile-n71", band="n71", is_tdd=False,
    center_frequency_hz=622.85e6, scs_khz=15, bandwidth_hz=15e6,
    cell_id=5, bwp_id=1, mcs_table="qam256", n_prb_override=79)

ALL_PROFILES = {p.name: p for p in (
    SRSRAN_PROFILE, MOSOLAB_PROFILE, AMARISOFT_PROFILE,
    TMOBILE_N25_PROFILE, TMOBILE_N71_PROFILE)}
