"""Tests for the integrated gNodeB."""

import pytest

from repro.constants import SI_RNTI
from repro.gnb.cell_config import AMARISOFT_PROFILE, SRSRAN_PROFILE, \
    TMOBILE_N25_PROFILE
from repro.gnb.gnb import GNodeB, GnbError
from repro.phy.numerology import SlotClock
from repro.phy.resource_grid import ResourceGrid
from repro.simulation import Simulation


def run_sim(profile=SRSRAN_PROFILE, n_ues=2, seconds=0.5, **kwargs):
    sim = Simulation.build(profile, n_ues=n_ues, seed=11, **kwargs)
    sim.run(seconds=seconds)
    return sim


class TestLifecycle:
    def test_ues_connect_via_rach(self):
        sim = run_sim(seconds=0.1)
        assert len(sim.gnb.connected_ues) == 2
        assert len(sim.gnb.log.msg4_records) == 2
        rntis = {ue.rnti for ue in sim.gnb.connected_ues}
        assert len(rntis) == 2

    def test_duplicate_ue_rejected(self):
        sim = run_sim(seconds=0.01)
        ue = sim.make_ue(ue_id=0)
        with pytest.raises(GnbError):
            sim.gnb.add_ue(ue)

    def test_remove_ue_clears_state(self):
        sim = run_sim(seconds=0.2)
        ue = sim.gnb.connected_ues[0]
        rnti = ue.rnti
        sim.gnb.remove_ue(ue.ue_id, time_s=sim.now_s)
        assert sim.gnb.ue_by_rnti(rnti) is None
        assert ue.departure_time_s == pytest.approx(0.2, abs=0.01)
        sim.run(seconds=0.1)  # must not crash with the UE gone

    def test_unknown_fidelity_rejected(self):
        with pytest.raises(GnbError):
            GNodeB(SRSRAN_PROFILE, fidelity="magic")

    def test_unknown_scheduler_rejected(self):
        with pytest.raises(GnbError):
            GNodeB(SRSRAN_PROFILE, scheduler="fifo")


class TestBroadcast:
    def test_mib_on_period(self):
        gnb = GNodeB(SRSRAN_PROFILE)
        mibs = 0
        clock = SlotClock(0, 0, 30)
        slots_per_frame = 20
        n_frames = 5 * SRSRAN_PROFILE.mib_period_frames
        for _ in range(n_frames * slots_per_frame):
            output = gnb.step(clock)
            if output.mib is not None:
                mibs += 1
                assert output.mib.sfn == clock.sfn
            clock = clock.advance(1)
        assert mibs == 5

    def test_sib1_comes_with_si_dci(self):
        gnb = GNodeB(SRSRAN_PROFILE)
        clock = SlotClock(0, 0, 30)
        output = gnb.step(clock)
        assert output.sib1 is not None
        si_dcis = [r for r in output.dci_records if r.rnti == SI_RNTI]
        assert len(si_dcis) == 1
        assert si_dcis[0].search_space == "common"


class TestDataPath:
    def test_traffic_flows(self):
        sim = run_sim(seconds=1.0)
        dl = sim.gnb.log.downlink_records()
        assert len(dl) > 100
        for ue in sim.gnb.connected_ues:
            assert ue.delivered_dl_bits > 0

    def test_tdd_respects_dl_slots(self):
        sim = run_sim(seconds=0.5)
        for record in sim.gnb.log.dci_records:
            assert SRSRAN_PROFILE.is_downlink_slot(record.slot_index)

    def test_fdd_schedules_every_slot_kind(self):
        sim = run_sim(profile=TMOBILE_N25_PROFILE, seconds=0.5)
        assert len(sim.gnb.log.downlink_records()) > 50

    def test_grant_tbs_matches_dci_roundtrip(self):
        from repro.phy.grant import dci_to_grant
        sim = run_sim(seconds=0.3)
        config = SRSRAN_PROFILE.grant_config()
        for record in sim.gnb.log.downlink_records()[:50]:
            if record.rnti == SI_RNTI:
                continue
            assert dci_to_grant(record.dci, config).tbs_bits == \
                record.grant.tbs_bits

    def test_delivered_bytes_never_exceed_tbs(self):
        sim = run_sim(seconds=0.5)
        for record in sim.gnb.log.downlink_records():
            assert record.payload_bytes <= record.grant.tbs_bytes

    def test_bad_channel_produces_retransmissions(self):
        sim = run_sim(profile=AMARISOFT_PROFILE, n_ues=4, seconds=1.0,
                      channel="urban", ue_snr_db=14.0)
        dl = sim.gnb.log.downlink_records()
        retx = [r for r in dl if r.is_retransmission]
        assert retx, "urban channel at modest SNR must trigger HARQ retx"
        # Retransmission keeps the NDI of the original (same process).
        by_ue_harq = {}
        for record in dl:
            key = (record.rnti, record.dci.harq_id)
            if record.is_retransmission:
                assert key in by_ue_harq
                assert by_ue_harq[key] == record.dci.ndi
            by_ue_harq[key] = record.dci.ndi

    def test_harq_combining_keeps_drops_rare(self):
        """Chase combining gain accumulates across retransmissions, so
        blocks exhausting all retransmissions (drops) stay a small
        fraction even in deep correlated fading.  (Note the conditional
        retransmission failure rate can exceed the first-transmission
        rate — retransmissions happen exactly when the UE is faded.)"""
        sim = run_sim(profile=AMARISOFT_PROFILE, n_ues=4, seconds=2.0,
                      channel="urban", ue_snr_db=14.0)
        dl = [r for r in sim.gnb.log.downlink_records()
              if r.search_space == "ue"]
        firsts = [r for r in dl if not r.is_retransmission]
        retx = [r for r in dl if r.is_retransmission]
        assert retx, "need retransmissions to measure"
        dropped = sum(e.dropped_blocks
                      for e in sim.gnb._harq.values())
        assert dropped / max(len(firsts), 1) < 0.05
        # Most blocks ultimately deliver despite the harsh channel.
        delivered_blocks = sum(r.delivered for r in dl)
        assert delivered_blocks / len(firsts) > 0.95

    def test_ndi_toggles_for_new_data_per_process(self):
        sim = run_sim(seconds=1.0)
        last = {}
        for record in sim.gnb.log.downlink_records():
            if record.rnti == SI_RNTI or record.is_retransmission:
                continue
            key = (record.rnti, record.dci.harq_id)
            if key in last:
                assert record.dci.ndi != last[key], \
                    "new data must toggle NDI"
            last[key] = record.dci.ndi


class TestUplinkDemandSignalling:
    def test_no_ul_grant_before_any_sr(self):
        """The gNB learns uplink demand from scheduling requests, so no
        UL DCI may appear before the UE's first UCI opportunity."""
        sim = run_sim(seconds=0.5)
        first_sr_slot = {}
        for record in sim.gnb.log.uci_records:
            if record.report.scheduling_request:
                first_sr_slot.setdefault(record.rnti, record.slot_index)
        for record in sim.gnb.log.uplink_records():
            assert record.rnti in first_sr_slot, \
                "UL grant for a UE that never sent an SR"
            assert record.slot_index > first_sr_slot[record.rnti], \
                "UL grant before the UE's first scheduling request"

    def test_bsr_keeps_grants_flowing_without_more_srs(self):
        """Once data flows, buffer status updates (not SRs) sustain the
        uplink: grants outnumber SRs."""
        sim = run_sim(seconds=1.0)
        n_srs = sum(r.report.scheduling_request
                    for r in sim.gnb.log.uci_records)
        n_grants = len(sim.gnb.log.uplink_records())
        assert n_grants > 0
        assert n_grants > n_srs * 0.8  # grants not 1:1 throttled by SRs

    def test_cqi_reports_fill_the_log(self):
        sim = run_sim(seconds=0.5)
        cqis = [r.report.cqi for r in sim.gnb.log.uci_records
                if r.report.cqi is not None]
        assert cqis
        assert all(0 <= c <= 15 for c in cqis)


class TestIqMode:
    def test_grid_rendered_with_pdcch(self):
        sim = run_sim(seconds=0.05, fidelity="iq")
        outputs = []
        sim.add_observer(outputs.append)
        sim.run(seconds=0.05)
        with_dcis = [o for o in outputs
                     if o.grid is not None and o.dci_records]
        assert with_dcis
        for output in with_dcis:
            assert output.grid.count_regs(
                kinds=(ResourceGrid.PDCCH,)) > 0

    def test_message_mode_has_no_grid(self):
        sim = run_sim(seconds=0.05, fidelity="message")
        outputs = []
        sim.add_observer(outputs.append)
        sim.run(seconds=0.05)
        assert all(o.grid is None for o in outputs)
