"""Tests for the three shipped reporters and the spec parser."""

import json

import pytest

from repro.obs import CounterReporter, JsonlReporter, Reporter, \
    ReporterError, RingReporter, reporters_from_specs


def make_event(name="dci.miss", kind="event", seq=0, **fields):
    event = {"v": 1, "seq": seq, "run_id": "r1", "kind": kind,
             "name": name}
    event.update(fields)
    return event


class TestJsonlReporter:
    def test_writes_one_compact_line_per_event(self, tmp_path):
        path = tmp_path / "events.jsonl"
        reporter = JsonlReporter(path)
        reporter.emit(make_event(seq=0, rnti=1))
        reporter.emit(make_event(seq=1, rnti=2))
        reporter.close()
        lines = path.read_text().splitlines()
        assert len(lines) == 2
        assert reporter.count == 2
        assert json.loads(lines[0])["rnti"] == 1
        assert ": " not in lines[0]

    def test_lazy_open(self, tmp_path):
        path = tmp_path / "never.jsonl"
        reporter = JsonlReporter(path)
        reporter.close()
        assert not path.exists()

    def test_close_is_idempotent(self, tmp_path):
        reporter = JsonlReporter(tmp_path / "e.jsonl")
        reporter.emit(make_event())
        reporter.close()
        reporter.close()


class TestRingReporter:
    def test_bounded(self):
        ring = RingReporter(capacity=3)
        for i in range(5):
            ring.emit(make_event(seq=i))
        assert len(ring) == 3
        assert ring.count == 5
        assert [e["seq"] for e in ring.events] == [2, 3, 4]

    def test_copies_events(self):
        ring = RingReporter()
        event = make_event()
        ring.emit(event)
        event["name"] = "mutated"
        assert ring.events[0]["name"] == "dci.miss"

    def test_bad_capacity(self):
        with pytest.raises(ReporterError):
            RingReporter(capacity=0)


class TestCounterReporter:
    def test_events_count_as_one(self):
        rep = CounterReporter()
        rep.emit(make_event("dci.miss", stage="dci"))
        rep.emit(make_event("dci.miss", stage="dci"))
        rep.emit(make_event("dci.miss", stage="rach"))
        assert rep.value("dci.miss", stage="dci") == 2
        assert rep.value("dci.miss") == 3

    def test_counters_add_value(self):
        rep = CounterReporter()
        rep.emit(make_event("dci.decoded", kind="counter", value=3))
        rep.emit(make_event("dci.decoded", kind="counter", value=4))
        assert rep.value("dci.decoded") == 7

    def test_high_cardinality_fields_are_not_labels(self):
        rep = CounterReporter()
        for rnti in range(100):
            rep.emit(make_event("dci.miss", rnti=rnti, stage="dci"))
        assert len(rep._counters) == 1
        assert rep.value("dci.miss") == 100

    def test_span_histogram(self):
        rep = CounterReporter()
        rep.emit(make_event("stage.span", kind="span", stage="dci",
                            duration_us=80.0))
        rep.emit(make_event("stage.span", kind="span", stage="dci",
                            duration_us=70000.0))
        assert rep.span_count("stage.span", stage="dci") == 2
        assert rep.span_sum_us("stage.span") == pytest.approx(70080.0)

    def test_render_text_prometheus_format(self):
        rep = CounterReporter()
        rep.emit(make_event("dci.miss", cell="srsran", stage="dci"))
        rep.emit(make_event("stage.span", kind="span", stage="dci",
                            duration_us=80.0))
        text = rep.render_text()
        assert "# TYPE nrscope_dci_miss_total counter" in text
        assert 'nrscope_dci_miss_total{cell="srsran",stage="dci"} 1' \
            in text
        assert 'nrscope_stage_span_duration_us_bucket{stage="dci",' \
            'le="100"} 1' in text
        assert 'nrscope_stage_span_duration_us_count{stage="dci"} 1' \
            in text

    def test_render_text_empty(self):
        assert CounterReporter().render_text() == ""


class TestSpecs:
    def test_parse_all_kinds(self, tmp_path):
        specs = [f"jsonl:{tmp_path}/e.jsonl", "counters", "ring:16",
                 "ring"]
        reporters = reporters_from_specs(specs)
        assert isinstance(reporters[0], JsonlReporter)
        assert isinstance(reporters[1], CounterReporter)
        assert isinstance(reporters[2], RingReporter)
        assert reporters[2].capacity == 16
        assert all(isinstance(r, Reporter) for r in reporters)

    @pytest.mark.parametrize("spec", ["jsonl", "jsonl:", "counters:x",
                                      "ring:abc", "statsd:host"])
    def test_bad_specs(self, spec):
        with pytest.raises(ReporterError):
            reporters_from_specs([spec])
