"""Multi-cell telemetry fusion (paper section 7, "Post-Processing
Library": multiple USRPs decoding multiple cells, with the streams fused
to expose carrier aggregation and handover events).

Three pieces:

* :class:`MultiCellController` - drives several independent cell
  simulations in lockstep wall-clock time, one NR-Scope per cell, and
  can move a device between cells (the RAN-side half of a handover).
* :func:`detect_handovers` - post-processes the per-cell telemetry:
  an RNTI going quiet in one cell followed within a window by a fresh
  MSG 4 in another is a handover candidate.
* :func:`correlate_streams` / :class:`FusedStream` - activity
  correlation across cells to pair carrier-aggregated legs, and the
  merged per-device throughput series the paper's aggregate data
  stream describes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.scope import NRScope
from repro.obs.context import AnyObsContext, OBS_NOOP
from repro.simulation import Simulation


class MultiCellError(ValueError):
    """Raised for inconsistent multi-cell setups."""


@dataclass
class CellStream:
    """One cell's simulation plus the scope listening to it."""

    name: str
    sim: Simulation
    scope: NRScope


@dataclass(frozen=True)
class HandoverEvent:
    """One detected cell change of a device."""

    from_cell: str
    to_cell: str
    from_rnti: int
    to_rnti: int
    left_at_s: float
    joined_at_s: float

    @property
    def gap_s(self) -> float:
        """Interruption between the last old-cell DCI and the new MSG 4."""
        return self.joined_at_s - self.left_at_s


class MultiCellController:
    """Runs several cells side by side under one clock.

    Each cell's scope is an independent
    :class:`~repro.core.runtime.SlotRuntime`; the controller's executor
    settings are handed to every scope it builds, so N cells means N
    per-cell runtimes driven through the same staged machinery.
    """

    def __init__(self, executor: str = "inline", n_workers: int = 4,
                 n_dci_threads: int = 1,
                 obs: AnyObsContext | None = None) -> None:
        self.executor = executor
        self.n_workers = n_workers
        self.n_dci_threads = n_dci_threads
        #: Shared observability bus: every scope built by ``add_cell``
        #: binds its cell name as a constant event label, so the fleet
        #: emits one globally sequenced stream.
        self.obs = obs if obs is not None else OBS_NOOP
        self._streams: dict[str, CellStream] = {}
        self._next_ue_id = 10_000
        self.now_s = 0.0

    def add_cell(self, name: str, sim: Simulation,
                 scope: NRScope | None = None,
                 **scope_kwargs) -> CellStream:
        """Register one cell + sniffer pair.

        With no ``scope``, one is attached here with the controller's
        executor settings (``scope_kwargs`` pass through to
        :meth:`NRScope.attach`); passing a pre-built scope keeps
        working for callers that need custom wiring.
        """
        if name in self._streams:
            raise MultiCellError(f"duplicate cell name: {name!r}")
        if scope is None:
            scope_kwargs.setdefault("obs", self.obs)
            scope_kwargs.setdefault("cell", name)
            scope = NRScope.attach(sim, executor=self.executor,
                                   n_workers=self.n_workers,
                                   n_dci_threads=self.n_dci_threads,
                                   **scope_kwargs)
        stream = CellStream(name=name, sim=sim, scope=scope)
        self._streams[name] = stream
        return stream

    @property
    def cells(self) -> list[str]:
        """Registered cell names."""
        return sorted(self._streams)

    def stream(self, name: str) -> CellStream:
        """Look up one cell."""
        if name not in self._streams:
            raise MultiCellError(f"unknown cell: {name!r}")
        return self._streams[name]

    def run(self, seconds: float) -> None:
        """Advance every cell by the same wall-clock duration.

        Cells may run different numerologies (15 vs 30 kHz SCS), so the
        loop interleaves their slot steps by timestamp rather than
        assuming a shared TTI.
        """
        if seconds < 0:
            raise MultiCellError(f"negative duration: {seconds}")
        target = self.now_s + seconds
        streams = list(self._streams.values())
        if not streams:
            self.now_s = target
            return
        while True:
            upcoming = [(s.sim.now_s, i) for i, s in enumerate(streams)
                        if s.sim.now_s < target - 1e-12]
            if not upcoming:
                break
            _, index = min(upcoming)
            streams[index].sim.step()
        # The interleaved loop steps the sims directly, so barrier on
        # every cell's runtime before handing telemetry back.
        for stream in streams:
            stream.sim.flush_observers()
        self.now_s = target

    def runtime_stats(self) -> dict[str, "object"]:
        """Per-cell :class:`~repro.core.runtime.RuntimeStats` snapshot."""
        return {name: stream.scope.runtime_stats
                for name, stream in sorted(self._streams.items())}

    def fleet_state(self) -> dict:
        """Controller-level checkpoint payload (clock + UE-id cursor).

        Per-cell state travels separately (see
        :class:`~repro.core.fleet.FleetSupervisor`); this covers only
        what the controller itself owns.
        """
        return {"now_s": self.now_s, "next_ue_id": self._next_ue_id}

    def restore_fleet_state(self, state: dict) -> None:
        """Adopt a :meth:`fleet_state` snapshot."""
        self.now_s = state["now_s"]
        self._next_ue_id = state["next_ue_id"]

    def attach_device(self, cell: str, traffic: str = "bulk",
                      channel: str = "pedestrian",
                      mean_snr_db: float = 20.0,
                      rate_bps: float = 4e6) -> int:
        """Admit a new device to one cell; returns its UE id."""
        stream = self.stream(cell)
        ue_id = self._next_ue_id
        self._next_ue_id += 1
        ue = stream.sim.make_ue(ue_id, traffic=traffic, channel=channel,
                                mean_snr_db=mean_snr_db,
                                rate_bps=rate_bps,
                                arrival_time_s=stream.sim.now_s)
        stream.sim.gnb.add_ue(ue, slot_index=stream.sim.clock.index)
        return ue_id

    def attach_ca_device(self, cells: list[str], traffic: str = "onoff",
                         channel: str = "pedestrian",
                         mean_snr_db: float = 20.0,
                         rate_bps: float = 4e6) -> dict[str, int]:
        """Attach one carrier-aggregated device: one leg per cell.

        The legs share a traffic seed so their on/off pattern is the
        same stream split across carriers — the signature
        ``correlate_streams`` detects.  Returns {cell: ue_id}.
        """
        if len(cells) < 2:
            raise MultiCellError("carrier aggregation needs >= 2 cells")
        shared_seed = self._next_ue_id * 7919
        legs: dict[str, int] = {}
        for cell in cells:
            stream = self.stream(cell)
            ue_id = self._next_ue_id
            self._next_ue_id += 1
            from repro.simulation import make_traffic
            from repro.ue.channel import FadingChannel
            from repro.ue.mobility import StaticUe
            from repro.ue.traffic import TrafficBuffer
            from repro.ue.ue import UserEquipment
            slot_s = stream.sim.profile.slot_duration_s
            ue = UserEquipment(
                ue_id=ue_id,
                dl_buffer=TrafficBuffer(make_traffic(
                    traffic, slot_s, shared_seed, rate_bps)),
                ul_buffer=TrafficBuffer(make_traffic(
                    "poisson", slot_s, shared_seed + 1,
                    max(rate_bps * 0.1, 1.0))),
                channel=FadingChannel(channel, mean_snr_db, slot_s,
                                      seed=ue_id),
                mobility=StaticUe(),
                arrival_time_s=stream.sim.now_s)
            stream.sim.gnb.add_ue(ue, slot_index=stream.sim.clock.index)
            legs[cell] = ue_id
        return legs

    def handover(self, ue_id: int, from_cell: str, to_cell: str,
                 **attach_kwargs) -> int:
        """Move a device: release in one cell, RACH into another.

        Returns the device's new UE id in the target cell (the RAN
        assigns a fresh RNTI there; tying the two identities together
        is exactly the fusion problem ``detect_handovers`` solves).
        """
        source = self.stream(from_cell)
        source.sim.gnb.remove_ue(ue_id, time_s=source.sim.now_s)
        return self.attach_device(to_cell, **attach_kwargs)


def detect_handovers(streams: list[CellStream],
                     max_gap_s: float = 1.0,
                     min_active_s: float = 0.05) -> list[HandoverEvent]:
    """Fuse per-cell telemetry into handover events.

    For every RNTI whose DCI stream *ends* in one cell (quiet through
    the end of its session), look for an MSG 4 in another cell within
    ``max_gap_s`` after the last DCI.  Candidate pairs are matched
    greedily by smallest gap.
    """
    if max_gap_s <= 0:
        raise MultiCellError("gap window must be positive")
    departures = []   # (time, cell, rnti)
    arrivals = []     # (time, cell, rnti)
    for stream in streams:
        end_s = stream.sim.now_s
        store = stream.scope.telemetry.store
        for rnti in stream.scope.telemetry.rntis():
            extents = store.time_extents(rnti)
            if extents is None:
                continue
            first, last = extents
            if last - first < min_active_s:
                continue
            if end_s - last > max_gap_s / 2:
                departures.append((last, stream.name, rnti))
        rach = stream.scope.rach
        if rach is None:
            continue
        for rnti, tracked in rach.tracked.items():
            arrivals.append((tracked.first_seen_s, stream.name, rnti))

    events: list[HandoverEvent] = []
    used_arrivals: set[tuple[str, int]] = set()
    for left_at, from_cell, from_rnti in sorted(departures):
        best: tuple[float, float, str, int] | None = None
        for joined_at, to_cell, to_rnti in arrivals:
            if to_cell == from_cell:
                continue
            if (to_cell, to_rnti) in used_arrivals:
                continue
            gap = joined_at - left_at
            if not 0.0 <= gap <= max_gap_s:
                continue
            if best is None or gap < best[0]:
                best = (gap, joined_at, to_cell, to_rnti)
        if best is not None:
            _, joined_at, to_cell, to_rnti = best
            used_arrivals.add((to_cell, to_rnti))
            events.append(HandoverEvent(
                from_cell=from_cell, to_cell=to_cell,
                from_rnti=from_rnti, to_rnti=to_rnti,
                left_at_s=left_at, joined_at_s=joined_at))
    return events


def _activity_vector(stream: CellStream, rnti: int, bin_s: float,
                     end_s: float) -> np.ndarray:
    """Binned new-data bits for one RNTI (the correlation feature).

    One row of the store's :meth:`~repro.core.telemetry_store.\
TelemetryStore.activity_matrix` kernel; kept as the single-RNTI entry
    point.
    """
    store = stream.scope.telemetry.store
    return store.activity_matrix([rnti], bin_s, end_s)[0]


def correlate_streams(a: CellStream, b: CellStream,
                      bin_s: float = 0.1) -> list[tuple[int, int, float]]:
    """Cross-cell activity correlation: candidate CA pairings.

    Returns (rnti in a, rnti in b, correlation) sorted best first.
    Carrier-aggregated legs of one device carry correlated traffic;
    unrelated UEs do not.

    Each cell's activity matrix is built *once* (one scatter-add pass
    over its columnar store) and every pairing correlates rows of it —
    the seed rebuilt cell B's vector from scratch inside the cell-A
    loop, an O(N²) full-telemetry rescan.
    """
    end_s = max(a.sim.now_s, b.sim.now_s)
    rntis_a = a.scope.telemetry.rntis()
    rntis_b = b.scope.telemetry.rntis()
    if not rntis_a or not rntis_b:
        return []
    matrix_a = a.scope.telemetry.store.activity_matrix(
        rntis_a, bin_s, end_s)
    matrix_b = b.scope.telemetry.store.activity_matrix(
        rntis_b, bin_s, end_s)
    keep_a = [i for i in range(len(rntis_a))
              if float(matrix_a[i].std()) != 0.0]
    keep_b = [j for j in range(len(rntis_b))
              if float(matrix_b[j].std()) != 0.0]
    if not keep_a or not keep_b:
        return []
    stacked = np.vstack([matrix_a[keep_a], matrix_b[keep_b]])
    corr = np.corrcoef(stacked)
    pairs = [(rntis_a[i], rntis_b[j],
              float(corr[row, len(keep_a) + col]))
             for row, i in enumerate(keep_a)
             for col, j in enumerate(keep_b)]
    return sorted(pairs, key=lambda p: -p[2])


@dataclass
class FusedStream:
    """The aggregate data stream of one device across cells."""

    device: str
    legs: list[tuple[CellStream, int]] = field(default_factory=list)

    def add_leg(self, stream: CellStream, rnti: int) -> None:
        """Attach one (cell, RNTI) leg of the device."""
        self.legs.append((stream, rnti))

    def total_bits(self, start_s: float = 0.0,
                   end_s: float | None = None) -> int:
        """Aggregate new-data bits over every leg."""
        total = 0
        for stream, rnti in self.legs:
            stop = end_s if end_s is not None else stream.sim.now_s
            total += stream.scope.telemetry.bits_between(rnti, start_s,
                                                         stop)
        return total

    def throughput_series(self, window_s: float) \
            -> list[tuple[float, float]]:
        """Summed per-window bit rate across legs (the fused stream).

        Every leg's series shares one end time and window width, so the
        windows line up by *integer index* — the legs sum positionally.
        (The seed merged on ``round(t, 9)`` float keys, which splits a
        window in two once accumulated edges drift past the rounding.)
        """
        if not self.legs:
            raise MultiCellError(f"device {self.device!r} has no legs")
        end_s = max(stream.sim.now_s for stream, _ in self.legs)
        times: list[float] = []
        totals: list[float] = []
        for stream, rnti in self.legs:
            series = stream.scope.telemetry.bitrate_series(
                rnti, window_s, end_s)
            if not times:
                times = [t for t, _ in series]
                totals = [0.0] * len(series)
            for index, (_, rate) in enumerate(series):
                totals[index] += rate
        return list(zip(times, totals))
