"""Tests for repro.phy.ofdm: slot modulation/demodulation."""

import numpy as np
import pytest

from repro.phy.ofdm import OfdmConfig, OfdmError, demodulate_slot, \
    fft_size_for, modulate_slot
from repro.phy.resource_grid import ResourceGrid


class TestGeometry:
    def test_fft_size(self):
        assert fft_size_for(612) == 1024
        assert fft_size_for(300) == 512
        assert fft_size_for(64) == 64
        assert fft_size_for(1) == 64

    def test_rejects_zero(self):
        with pytest.raises(OfdmError):
            fft_size_for(0)

    def test_config_for_grid(self):
        config = OfdmConfig.for_grid(612)
        assert config.fft_size == 1024
        assert config.cp_len == 72
        assert config.samples_per_symbol == 1096
        assert config.samples_per_slot == 1096 * 14


class TestRoundtrip:
    def test_empty_grid(self):
        grid = ResourceGrid(n_prb=4)
        config = OfdmConfig.for_grid(grid.n_subcarriers)
        out = demodulate_slot(modulate_slot(grid, config), config)
        assert np.allclose(out.data, 0.0, atol=1e-12)

    def test_random_grid_roundtrip(self, rng):
        grid = ResourceGrid(n_prb=20)
        grid.data[:] = rng.normal(size=grid.data.shape) + \
            1j * rng.normal(size=grid.data.shape)
        config = OfdmConfig.for_grid(grid.n_subcarriers)
        out = demodulate_slot(modulate_slot(grid, config), config)
        assert np.allclose(out.data, grid.data, atol=1e-9)

    def test_power_preserved(self, rng):
        grid = ResourceGrid(n_prb=10)
        grid.data[:] = rng.normal(size=grid.data.shape)
        config = OfdmConfig.for_grid(grid.n_subcarriers)
        samples = modulate_slot(grid, config)
        grid_power = np.sum(np.abs(grid.data) ** 2)
        sample_power = np.sum(np.abs(samples) ** 2)
        # CP adds a deterministic fraction of extra energy.
        overhead = config.samples_per_symbol / config.fft_size
        assert sample_power == pytest.approx(grid_power * overhead, rel=0.05)

    def test_wrong_geometry_rejected(self):
        grid = ResourceGrid(n_prb=4)
        config = OfdmConfig.for_grid(612)
        with pytest.raises(OfdmError):
            modulate_slot(grid, config)
        with pytest.raises(OfdmError):
            demodulate_slot(np.zeros(10, dtype=complex), config)

    def test_single_subcarrier_tone(self):
        # One RE on one symbol becomes a complex tone in that symbol only.
        grid = ResourceGrid(n_prb=4)
        grid.write_res(0, 3, np.array([1.0 + 0j]), ResourceGrid.PDSCH)
        config = OfdmConfig.for_grid(grid.n_subcarriers)
        samples = modulate_slot(grid, config)
        sps = config.samples_per_symbol
        sym3 = samples[3 * sps:4 * sps]
        other = np.concatenate([samples[:3 * sps], samples[4 * sps:]])
        assert np.sum(np.abs(sym3) ** 2) > 0.9
        assert np.allclose(other, 0.0, atol=1e-12)
