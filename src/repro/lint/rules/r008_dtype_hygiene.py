"""R008: numpy allocations in PHY hot paths must pin their dtype.

``np.zeros(n)`` silently allocates float64.  In the PHY kernels that is
never what the signal chain wants: IQ buffers are complex64, LLRs and
soft bits are float32, bit vectors are uint8 — and a dtype-less
allocation entering a chain of complex64 math upcasts *everything*
downstream to complex128, doubling memory traffic and silently changing
numerical results between code paths.  The upcoming vectorized batch
kernels (ROADMAP) make this worse: one sloppy scratch buffer poisons a
whole batch.

Flags, inside ``phy/`` and ``radio/``, any ``np.zeros`` / ``np.empty``
/ ``np.ones`` / ``np.full`` / ``np.zeros_like``-family call that pins
no dtype (neither a ``dtype=`` keyword nor the positional dtype slot).
The ``_like`` variants are exempt — they inherit their prototype's
dtype, which is the point.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.astutil import dotted_name
from repro.lint.engine import LintContext
from repro.lint.findings import Finding
from repro.lint.registry import Rule, register

#: allocator leaf name -> index of the positional dtype slot.
ALLOCATORS = {"zeros": 1, "empty": 1, "ones": 1, "full": 2}

#: Package-relative prefixes where allocation dtype is load-bearing.
HOT_PREFIXES = ("phy/", "radio/")


@register
class DtypeHygieneRule(Rule):
    """Flag dtype-less numpy allocations in PHY hot paths."""

    rule_id = "R008"
    title = "dtype-less numpy allocation in a PHY hot path"

    def applies(self, rel: str) -> bool:
        return rel.startswith(HOT_PREFIXES)

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            name = dotted_name(node.func)
            if name is None:
                continue
            leaf = name.split(".")[-1]
            if leaf not in ALLOCATORS:
                continue
            if any(kw.arg == "dtype" for kw in node.keywords):
                continue
            if len(node.args) > ALLOCATORS[leaf]:
                continue
            yield self.finding(
                ctx, node,
                f"'{name}(...)' allocates float64 by default: PHY "
                f"buffers must pin their dtype (complex64 IQ, float32 "
                f"soft values, uint8 bits) or downstream math silently "
                f"upcasts")
