"""The Fig 4 processing pipeline: scheduler, worker pool, result queue.

The paper's implementation keeps up with 0.5 ms TTIs by handing each
slot's samples to an idle worker, which spawns SIBs/RACH/DCI tasks and
pushes results onto a queue the scheduler drains.  This module
reproduces that shape with Python threads:

* :class:`SlotTask` - one slot's work (the captured grid or DCI records
  plus the UE list snapshot).
* :class:`WorkerPool` - N workers pulling tasks from a queue; per-slot
  processing time is measured for the Fig 12 benchmark.
* DCI extraction shards the tracked-UE list across ``n_dci_threads``
  like the paper's DCI threads.

A deviation worth naming: CPython's GIL serialises the pure-Python parts
of DCI decoding, so thread scaling here shows less speed-up than the C++
original; the benchmark reports both so the effect is visible rather
than hidden (EXPERIMENTS.md discusses it).
"""

from __future__ import annotations

import queue
import threading
import time
from dataclasses import dataclass, field

from repro.core.dci_decoder import DecodedDci, GridDciDecoder
from repro.core.rach_sniffer import TrackedUe
from repro.phy.resource_grid import ResourceGrid


class PipelineError(ValueError):
    """Raised for invalid pipeline configuration."""


@dataclass
class SlotTask:
    """One slot's decode workload, as handed to a worker."""

    slot_index: int
    grid: ResourceGrid
    tracked: dict[int, TrackedUe]


@dataclass
class SlotResult:
    """What a worker produced for one slot."""

    slot_index: int
    decoded: list[DecodedDci]
    processing_time_s: float
    worker_id: int = -1


def shard_ues(tracked: dict[int, TrackedUe], n_shards: int) \
        -> list[dict[int, TrackedUe]]:
    """Split the UE list across DCI threads (paper section 4)."""
    if n_shards < 1:
        raise PipelineError(f"need at least one shard: {n_shards}")
    shards: list[dict[int, TrackedUe]] = [{} for _ in range(n_shards)]
    for position, (rnti, ue) in enumerate(sorted(tracked.items())):
        shards[position % n_shards][rnti] = ue
    return shards


def process_slot_task(task: SlotTask, decoder: GridDciDecoder,
                      n_dci_threads: int = 1) -> SlotResult:
    """Run one slot's DCI extraction, optionally sharded across threads."""
    start = time.perf_counter()
    if n_dci_threads <= 1 or len(task.tracked) <= 1:
        decoded = decoder.decode_slot(task.grid, task.slot_index,
                                      task.tracked)
    else:
        shards = shard_ues(task.tracked, n_dci_threads)
        results: list[list[DecodedDci]] = [[] for _ in shards]
        # Shared CCE-claim set: each shard's successful decodes prune
        # the other shards' remaining candidates.
        claimed: set[int] = set()

        def run(shard_index: int) -> None:
            results[shard_index] = decoder.decode_slot(
                task.grid, task.slot_index, shards[shard_index],
                claimed=claimed)

        threads = [threading.Thread(target=run, args=(i,))
                   for i in range(len(shards))]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        decoded = [item for sub in results for item in sub]
    elapsed = time.perf_counter() - start
    return SlotResult(slot_index=task.slot_index, decoded=decoded,
                      processing_time_s=elapsed)


@dataclass
class PoolStatistics:
    """Aggregate timing of a pool run."""

    slots_processed: int = 0
    total_processing_s: float = 0.0
    per_slot_times: list[float] = field(default_factory=list)

    @property
    def mean_processing_us(self) -> float:
        """Average per-slot processing time in microseconds (Fig 12)."""
        if not self.per_slot_times:
            return 0.0
        return 1e6 * self.total_processing_s / len(self.per_slot_times)


class WorkerPool:
    """Asynchronous slot processing: the paper's worker block.

    Tasks go in through :meth:`submit`; results come back through the
    result queue in completion order.  ``drain`` collects everything,
    mirroring the scheduler's result-gathering loop.
    """

    def __init__(self, decoder: GridDciDecoder, n_workers: int = 4,
                 n_dci_threads: int = 1, queue_depth: int = 64) -> None:
        if n_workers < 1:
            raise PipelineError(f"need at least one worker: {n_workers}")
        self.decoder = decoder
        self.n_dci_threads = n_dci_threads
        self.statistics = PoolStatistics()
        self._tasks: queue.Queue[SlotTask | None] = queue.Queue(queue_depth)
        self._results: queue.Queue[SlotResult] = queue.Queue()
        self._workers = [
            threading.Thread(target=self._worker_loop, args=(i,),
                             daemon=True)
            for i in range(n_workers)]
        self._started = False
        self._lock = threading.Lock()

    def start(self) -> None:
        """Launch the worker threads (idempotent)."""
        if self._started:
            return
        self._started = True
        for worker in self._workers:
            worker.start()

    def _worker_loop(self, worker_id: int) -> None:
        while True:
            task = self._tasks.get()
            if task is None:
                self._tasks.task_done()
                return
            result = process_slot_task(task, self.decoder,
                                       self.n_dci_threads)
            result.worker_id = worker_id
            with self._lock:
                self.statistics.slots_processed += 1
                self.statistics.total_processing_s += \
                    result.processing_time_s
                self.statistics.per_slot_times.append(
                    result.processing_time_s)
            self._results.put(result)
            self._tasks.task_done()

    def submit(self, task: SlotTask) -> None:
        """Queue one slot for processing (blocks when the pool is full,
        the on-demand backpressure section 4 describes)."""
        if not self._started:
            self.start()
        self._tasks.put(task)

    def drain(self, expected: int, timeout_s: float = 30.0) \
            -> list[SlotResult]:
        """Collect ``expected`` results, in completion order."""
        results = []
        deadline = time.monotonic() + timeout_s
        while len(results) < expected:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise PipelineError(
                    f"timed out with {len(results)}/{expected} results")
            try:
                results.append(self._results.get(timeout=remaining))
            except queue.Empty as exc:
                raise PipelineError(
                    f"timed out with {len(results)}/{expected} results"
                ) from exc
        return results

    def shutdown(self) -> None:
        """Stop the workers after the queued tasks finish."""
        if not self._started:
            return
        for _ in self._workers:
            self._tasks.put(None)
        for worker in self._workers:
            worker.join(timeout=10.0)
        self._started = False
