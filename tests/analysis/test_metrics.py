"""Tests for the statistics helpers."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.metrics import (
    MetricsError,
    ccdf_points,
    cdf_points,
    coefficient_of_determination,
    percentile,
    relative_error,
    summarize_errors,
    throughput_error_series,
)


class TestDistributionPoints:
    def test_ccdf_shape(self):
        points = ccdf_points([1.0, 2.0, 3.0, 4.0])
        assert points[0] == (1.0, 0.75)
        assert points[-1] == (4.0, 0.0)

    def test_cdf_shape(self):
        points = cdf_points([1.0, 2.0, 3.0, 4.0])
        assert points[0] == (1.0, 0.25)
        assert points[-1] == (4.0, 1.0)

    def test_cdf_monotone(self):
        points = cdf_points(np.random.default_rng(0).normal(size=100))
        probs = [p for _, p in points]
        assert probs == sorted(probs)

    def test_empty_rejected(self):
        with pytest.raises(MetricsError):
            ccdf_points([])
        with pytest.raises(MetricsError):
            cdf_points([])

    @given(st.lists(st.floats(-1e6, 1e6), min_size=1, max_size=200))
    @settings(max_examples=30, deadline=None)
    def test_property_ccdf_cdf_complementary(self, values):
        ccdf = dict(ccdf_points(values))
        cdf = dict(cdf_points(values))
        for value in set(values):
            assert ccdf[value] + cdf[value] == pytest.approx(1.0)


class TestSummaries:
    def test_percentiles(self):
        values = list(range(1, 101))
        assert percentile(values, 50) == pytest.approx(50.5)
        assert percentile(values, 95) == pytest.approx(95.05)

    def test_summary_fields(self):
        summary = summarize_errors([1.0, 2.0, 3.0, 4.0])
        assert summary.n_samples == 4
        assert summary.median == pytest.approx(2.5)
        assert summary.mean == pytest.approx(2.5)
        assert "median=2.50kbps" in summary.describe()

    def test_validation(self):
        with pytest.raises(MetricsError):
            summarize_errors([])
        with pytest.raises(MetricsError):
            percentile([1.0], 101)


class TestThroughputErrors:
    def test_aligned_windows(self):
        est = [(1.0, 1e6), (2.0, 2e6)]
        truth = [(1.0, 1.1e6), (2.0, 2e6)]
        errors = throughput_error_series(est, truth)
        assert errors == [pytest.approx(100.0), pytest.approx(0.0)]

    def test_unaligned_skipped(self):
        est = [(1.0, 1e6), (1.5, 9e9)]
        truth = [(1.0, 1e6)]
        assert len(throughput_error_series(est, truth)) == 1

    def test_no_overlap_rejected(self):
        with pytest.raises(MetricsError):
            throughput_error_series([(1.0, 1.0)], [(2.0, 1.0)])

    def test_relative_error(self):
        assert relative_error(99.0, 100.0) == pytest.approx(0.01)
        with pytest.raises(MetricsError):
            relative_error(1.0, 0.0)


class TestJainFairness:
    def test_equal_shares_perfect(self):
        from repro.analysis.metrics import jain_fairness
        assert jain_fairness([5.0, 5.0, 5.0]) == pytest.approx(1.0)

    def test_monopoly_is_one_over_n(self):
        from repro.analysis.metrics import jain_fairness
        assert jain_fairness([10.0, 0.0, 0.0, 0.0]) == pytest.approx(0.25)

    def test_bounds(self):
        from repro.analysis.metrics import jain_fairness
        rng = np.random.default_rng(3)
        for _ in range(20):
            values = rng.exponential(1.0, size=8)
            index = jain_fairness(values)
            assert 1 / 8 <= index <= 1.0 + 1e-12

    def test_validation(self):
        from repro.analysis.metrics import jain_fairness
        with pytest.raises(MetricsError):
            jain_fairness([])
        with pytest.raises(MetricsError):
            jain_fairness([-1.0, 1.0])


class TestBootstrapCi:
    def test_brackets_the_true_median(self):
        from repro.analysis.metrics import bootstrap_ci
        rng = np.random.default_rng(4)
        sample = rng.normal(10.0, 2.0, size=400)
        low, high = bootstrap_ci(sample, q=50.0)
        assert low <= 10.0 + 0.5
        assert high >= 10.0 - 0.5
        assert low < high

    def test_narrows_with_sample_size(self):
        from repro.analysis.metrics import bootstrap_ci
        rng = np.random.default_rng(5)
        small = rng.normal(0, 1, 30)
        large = rng.normal(0, 1, 3000)
        low_s, high_s = bootstrap_ci(small)
        low_l, high_l = bootstrap_ci(large)
        assert (high_l - low_l) < (high_s - low_s)

    def test_validation(self):
        from repro.analysis.metrics import bootstrap_ci
        with pytest.raises(MetricsError):
            bootstrap_ci([])
        with pytest.raises(MetricsError):
            bootstrap_ci([1.0], confidence=1.5)


class TestR2:
    def test_perfect_fit(self):
        assert coefficient_of_determination([1, 2, 3], [1, 2, 3]) == 1.0

    def test_good_fit_near_one(self):
        truth = np.linspace(0, 30, 50)
        est = truth + np.random.default_rng(1).normal(0, 0.2, 50)
        assert coefficient_of_determination(est, truth) > 0.99

    def test_bad_fit_low(self):
        rng = np.random.default_rng(2)
        truth = np.linspace(0, 30, 50)
        assert coefficient_of_determination(rng.normal(15, 10, 50),
                                            truth) < 0.5

    def test_validation(self):
        with pytest.raises(MetricsError):
            coefficient_of_determination([1.0], [1.0, 2.0])
        with pytest.raises(MetricsError):
            coefficient_of_determination([], [])

    def test_constant_truth(self):
        assert coefficient_of_determination([2.0, 2.0], [2.0, 2.0]) == 1.0
        assert coefficient_of_determination([1.0, 3.0], [2.0, 2.0]) == 0.0
