"""Numerology and 3GPP constants shared across the library.

Values follow TS 38.211/38.212/38.214 unless noted. Only constants that
more than one subpackage needs live here; table data specific to one
module (MCS tables, TBS table) stays next to its user.
"""

from __future__ import annotations

#: Subcarriers per physical resource block (38.211 section 4.4.4.1).
N_SC_PER_PRB = 12

#: OFDM symbols per slot with normal cyclic prefix (38.211 section 4.3.2).
N_SYMBOLS_PER_SLOT = 14

#: System frame duration in seconds; frame numbers run 0..1023.
FRAME_DURATION_S = 10e-3

#: Number of subframes (1 ms each) per system frame.
N_SUBFRAMES_PER_FRAME = 10

#: System frame number wraps at this value (38.211 section 4.3.1).
SFN_MODULO = 1024

#: Resource elements per REG: one PRB wide, one OFDM symbol long.
N_RE_PER_REG = N_SC_PER_PRB

#: REGs per control channel element (38.211 section 7.3.2.2).
N_REG_PER_CCE = 6

#: Maximum number of HARQ processes per UE (38.321 section 5.4.1).
N_HARQ_PROCESSES = 16

#: PDCCH aggregation levels defined by 38.213 Table 10.1-1.
AGGREGATION_LEVELS = (1, 2, 4, 8, 16)

#: CRC length appended to DCI payloads (38.212 section 7.3.2).
DCI_CRC_LEN = 24

#: RNTI value space: 16-bit identifiers (38.321 Table 7.1-1).
RNTI_BITS = 16
MAX_RNTI = (1 << RNTI_BITS) - 1

#: Reserved RNTIs (38.321 Table 7.1-1): SI-RNTI is fixed, others configured.
SI_RNTI = 0xFFFF
P_RNTI = 0xFFFE
#: First value of the range usable for C-RNTI / TC-RNTI assignment.
FIRST_C_RNTI = 0x0001
LAST_C_RNTI = 0xFFEF

#: Subcarrier spacings (kHz) supported for data channels in FR1.
SUPPORTED_SCS_KHZ = (15, 30, 60)

#: Slots per subframe for each supported subcarrier spacing.
SLOTS_PER_SUBFRAME = {15: 1, 30: 2, 60: 4}

#: TTI (slot) duration in seconds for each supported subcarrier spacing.
TTI_DURATION_S = {15: 1e-3, 30: 0.5e-3, 60: 0.25e-3}

#: Maximum transport block size in bits (38.214, LDPC base graph 1 limit).
MAX_TBS_BITS = 1277992
