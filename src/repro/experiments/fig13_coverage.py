"""Fig 13: DCI miss rate across the floor (paper section 5.3.3).

The paper moves the USRP to eight positions around a 10 m x 7 m floor
with 64 UEs attached to the Amarisoft cell; miss rates stay near zero
except where signal quality degrades.  Here the floor geometry drives
the sniffer's link budget through the path-loss model, and each position
runs a full telemetry session.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.matching import match_dcis
from repro.analysis.report import Table
from repro.experiments.common import FigureResult
from repro.core.scope import NRScope
from repro.gnb.cell_config import AMARISOFT_PROFILE
from repro.radio.medium import PathLossModel, Position, RadioMedium
from repro.simulation import Simulation

#: Floor positions (metres) mirroring Fig 13's layout: the gNB sits at
#: (1, 1) in a 10 x 7 room; sniffer spots cover corners and edges.
FLOOR_POSITIONS = (
    Position(1.0, 2.0), Position(5.0, 1.0), Position(9.0, 1.0),
    Position(1.0, 6.0), Position(5.0, 6.0), Position(9.0, 6.0),
    Position(5.0, 3.5), Position(9.0, 3.5),
)


@dataclass(frozen=True)
class CoverageCell:
    """One floor position's outcome."""

    position: Position
    distance_m: float
    sniffer_snr_db: float
    dl_miss_rate: float
    ul_miss_rate: float


def floor_medium(seed: int = 0) -> RadioMedium:
    """Indoor medium for the coverage experiment.

    Short-range cluttered-indoor propagation (exponent 3.2, walls and
    furniture folded into the effective transmit budget) tuned so the
    positions nearest the gNB sit around 24 dB while the far corner
    lands near the PDCCH decode edge — the gradient that gives Fig 13
    its visible structure.
    """
    return RadioMedium(
        gnb_position=Position(1.0, 1.0), tx_power_dbm=-29.0,
        antenna_gain_db=0.0,
        path_loss=PathLossModel(exponent=3.2, shadowing_sigma_db=1.5),
        seed=seed)


def measure_position(position: Position, n_ues: int = 64,
                     duration_s: float = 1.0,
                     seed: int = 14) -> CoverageCell:
    """Run one telemetry session from one floor position."""
    sim = Simulation.build(AMARISOFT_PROFILE, n_ues=n_ues, seed=seed,
                           channel="pedestrian")
    sim.medium = floor_medium(seed)
    scope = NRScope.attach(sim, position=position)
    sim.run(seconds=duration_s)
    truth_dl = [r for r in sim.gnb.log.downlink_records()
                if r.search_space == "ue"]
    truth_ul = sim.gnb.log.uplink_records()
    dl = match_dcis(truth_dl, scope.telemetry.records, downlink=True)
    ul = match_dcis(truth_ul, scope.telemetry.records, downlink=False)
    return CoverageCell(
        position=position,
        distance_m=sim.medium.gnb_position.distance_to(position),
        sniffer_snr_db=scope.link.snr_db,
        dl_miss_rate=dl.miss_rate, ul_miss_rate=ul.miss_rate)


def run(n_ues: int = 64, duration_s: float = 1.0,
        seed: int = 14) -> list[CoverageCell]:
    """The full floor sweep."""
    return [measure_position(p, n_ues=n_ues, duration_s=duration_s,
                             seed=seed) for p in FLOOR_POSITIONS]


def to_result(cells: list[CoverageCell]) -> FigureResult:
    result = FigureResult(figure="fig13")
    result.add_series("miss-vs-distance",
                      sorted((c.distance_m, 100 * c.dl_miss_rate)
                             for c in cells))
    near = [c for c in cells if c.distance_m < 5.0]
    far = [c for c in cells if c.distance_m >= 5.0]
    if near:
        result.summary["near_dl_pct"] = 100 * sum(
            c.dl_miss_rate for c in near) / len(near)
    if far:
        result.summary["far_dl_pct"] = 100 * sum(
            c.dl_miss_rate for c in far) / len(far)
    return result


def table(cells: list[CoverageCell]) -> Table:
    return Table(
        title="Fig 13 - DCI miss rate across the floor (64 UEs)",
        columns=("x m", "y m", "dist m", "SNR dB", "DL miss %",
                 "UL miss %"),
        rows=tuple((c.position.x, c.position.y, c.distance_m,
                    c.sniffer_snr_db, 100 * c.dl_miss_rate,
                    100 * c.ul_miss_rate) for c in cells))
