"""CLI-level tests: exit codes, formats, baseline workflow, repro.cli."""

import json
from pathlib import Path

import pytest

from repro.cli import main as repro_main
from repro.lint.cli import main as lint_main

REPO_SRC = Path(__file__).resolve().parents[2] / "src" / "repro"


class TestLintCli:
    def test_clean_tree_exits_zero(self, capsys):
        assert lint_main([str(REPO_SRC)]) == 0
        assert "0 finding(s)" in capsys.readouterr().out

    def test_fixture_tree_exits_nonzero(self, fixtures_dir, capsys):
        assert lint_main([str(fixtures_dir)]) == 1
        out = capsys.readouterr().out
        for rule_id in ("R001", "R002", "R003", "R004",
                        "R005", "R006", "R007", "R008",
                        "R009", "R010", "R011", "R012"):
            assert rule_id in out

    def test_single_rule_selection(self, fixtures_dir, capsys):
        assert lint_main([str(fixtures_dir), "--select", "R005"]) == 1
        out = capsys.readouterr().out
        assert "R005" in out and "R001" not in out

    def test_bad_selection_exits_two(self, capsys):
        assert lint_main(["--select", "R999", str(REPO_SRC)]) == 2
        assert "unknown rule" in capsys.readouterr().err

    def test_empty_selection_exits_two(self, capsys):
        """An empty --select must not silently run zero rules."""
        assert lint_main(["--select", "", str(REPO_SRC)]) == 2
        assert "names no rules" in capsys.readouterr().err

    def test_missing_path_exits_two(self, tmp_path, capsys):
        assert lint_main([str(tmp_path / "missing")]) == 2
        assert "error" in capsys.readouterr().err

    def test_json_format(self, fixtures_dir, capsys):
        assert lint_main([str(fixtures_dir), "--format", "json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["findings"]
        rules = {f["rule"] for f in payload["findings"]}
        assert "R004" in rules
        assert all({"path", "line", "snippet"} <= set(f)
                   for f in payload["findings"])

    def test_list_rules(self, capsys):
        assert lint_main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in ("R001", "R002", "R003", "R004",
                        "R005", "R006", "R007", "R008",
                        "R009", "R010", "R011", "R012"):
            assert rule_id in out

    def test_sarif_format(self, fixtures_dir, capsys):
        assert lint_main([str(fixtures_dir), "--format",
                          "sarif"]) == 1
        log = json.loads(capsys.readouterr().out)
        assert log["version"] == "2.1.0"
        run = log["runs"][0]
        assert run["tool"]["driver"]["name"] == "nrlint"
        catalogue = {r["id"] for r in run["tool"]["driver"]["rules"]}
        assert {"R001", "R009", "R010", "R011", "R012"} <= catalogue
        assert run["results"]
        result = run["results"][0]
        assert result["ruleId"] in catalogue
        location = result["locations"][0]["physicalLocation"]
        assert location["artifactLocation"]["uri"]
        assert location["region"]["startLine"] >= 1
        assert location["region"]["startColumn"] >= 1

    def test_sarif_clean_tree_has_no_results(self, capsys):
        assert lint_main([str(REPO_SRC), "--format", "sarif"]) == 0
        log = json.loads(capsys.readouterr().out)
        assert log["runs"][0]["results"] == []

    def test_rule_crash_exits_two(self, fixtures_dir, capsys,
                                  monkeypatch):
        """An analyzer bug is exit 2 — never a fake-green exit 0."""
        from repro.lint.rules.r001_magic_numbers import MagicNumberRule

        def explode(self, ctx):
            raise RuntimeError("analyzer bug")

        monkeypatch.setattr(MagicNumberRule, "check", explode)
        assert lint_main([str(fixtures_dir)]) == 2
        assert "crashed" in capsys.readouterr().err

    def test_baseline_workflow(self, fixtures_dir, tmp_path, capsys):
        """write-baseline grandfathers everything; reruns go green;
        a new violation still fails."""
        baseline = tmp_path / "baseline.json"
        assert lint_main([str(fixtures_dir), "--baseline", str(baseline),
                          "--write-baseline"]) == 0
        capsys.readouterr()
        assert lint_main([str(fixtures_dir), "--baseline",
                          str(baseline)]) == 0
        assert "baselined" in capsys.readouterr().out

        extra = tmp_path / "tree" / "gnb"
        extra.mkdir(parents=True)
        (extra / "fresh.py").write_text("import time\nt = time.time()\n")
        assert lint_main([str(fixtures_dir), str(extra.parent),
                          "--baseline", str(baseline)]) == 1
        out = capsys.readouterr().out
        assert "fresh.py" in out

    def test_write_baseline_keeps_justifications(self, fixtures_dir,
                                                 tmp_path, capsys):
        baseline = tmp_path / "baseline.json"
        assert lint_main([str(fixtures_dir), "--baseline", str(baseline),
                          "--write-baseline"]) == 0
        data = json.loads(baseline.read_text())
        data["entries"][0]["justification"] = "grandfathered: see PR 4"
        baseline.write_text(json.dumps(data))
        assert lint_main([str(fixtures_dir), "--baseline", str(baseline),
                          "--write-baseline"]) == 0
        rewritten = json.loads(baseline.read_text())
        assert any(e["justification"] == "grandfathered: see PR 4"
                   for e in rewritten["entries"])


class TestEffectsMode:
    def test_effects_report_on_repo(self, capsys):
        assert lint_main(["effects", str(REPO_SRC)]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["stage_roots"] == \
            ["core/scope.py::NRScope._stage_dci"]
        frontier = report["purity_frontier"][0]
        assert frontier["pure"] is True
        assert report["functions"] > 100
        assert report["parse_failures"] == []

    def test_effects_report_flags_impure_fixture(self, fixtures_dir,
                                                 capsys):
        assert lint_main(["effects", str(fixtures_dir)]) == 0
        report = json.loads(capsys.readouterr().out)
        impure = [f for f in report["purity_frontier"] if not f["pure"]]
        assert impure
        effects = {v["effect"] for f in impure for v in f["violations"]}
        assert "mutates-tracked" in effects

    def test_effects_via_repro_cli(self, capsys):
        assert repro_main(["lint", "effects", str(REPO_SRC)]) == 0
        assert "purity_frontier" in capsys.readouterr().out


class TestContractsMode:
    def test_contract_report_on_repo(self, capsys):
        assert lint_main(["contracts", str(REPO_SRC)]) == 0
        report = json.loads(capsys.readouterr().out)

        wire = report["wire"]
        assert wire["n_escapes"] == 0
        assert wire["roots"]
        assert all(r["clean"] for r in wire["roots"])
        roles = {r["role"] for r in wire["roots"]}
        assert roles == {"pack", "job"}

        polar = report["shapes"]["phy/polar.py"]
        assert any(t["scalar"] == "decode"
                   and t["batch"] == "decode_batch"
                   for t in polar["twins"])
        decode_batch = polar["functions"]["decode_batch"]
        assert decode_batch["layouts"]["llrs"] == "(B, E) float64"
        assert not decode_batch["issues"]

        obs = report["obs"]
        assert obs["n_sites"] >= 15
        assert obs["unknown_names"] == []
        assert all(s["known"] for s in obs["sites"])
        assert report["parse_failures"] == []

    def test_contract_report_flags_fixture_contracts(self, fixtures_dir,
                                                     capsys):
        assert lint_main(["contracts", str(fixtures_dir)]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["wire"]["n_escapes"] >= 5
        reasons = {e["reason"] for r in report["wire"]["roots"]
                   for f in r["fields"] for e in f["escapes"]}
        assert {"tracked", "rng", "obs",
                "unpicklable", "file"} <= reasons
        assert "BadDecoder" in report["wire"]["unsafe_classes"]
        assert "decode.wat" in report["obs"]["unknown_names"]

    def test_contracts_via_repro_cli(self, capsys):
        assert repro_main(["lint", "contracts", str(REPO_SRC)]) == 0
        assert '"wire"' in capsys.readouterr().out


class TestChangedMode:
    def _git(self, *argv, cwd):
        import subprocess
        subprocess.run(["git", *argv], cwd=cwd, check=True,
                       capture_output=True,
                       env={"GIT_AUTHOR_NAME": "t",
                            "GIT_AUTHOR_EMAIL": "t@t",
                            "GIT_COMMITTER_NAME": "t",
                            "GIT_COMMITTER_EMAIL": "t@t",
                            "HOME": str(cwd), "PATH": "/usr/bin:/bin"})

    @pytest.fixture
    def repo(self, tmp_path, monkeypatch):
        self._git("init", "-q", cwd=tmp_path)
        tree = tmp_path / "src" / "repro" / "gnb"
        tree.mkdir(parents=True)
        (tree / "clean.py").write_text("X = 0\n")
        self._git("add", "-A", cwd=tmp_path)
        self._git("commit", "-qm", "seed", cwd=tmp_path)
        monkeypatch.chdir(tmp_path)
        return tmp_path

    def test_no_changes_is_clean_noop(self, repo, capsys):
        assert lint_main(["--changed"]) == 0
        assert "nothing to lint" in capsys.readouterr().out

    def test_untracked_violation_is_caught(self, repo, capsys):
        bad = repo / "src" / "repro" / "gnb" / "fresh.py"
        bad.write_text("import time\nt = time.time()\n")
        assert lint_main(["--changed"]) == 1
        assert "fresh.py" in capsys.readouterr().out

    def test_modified_tracked_file_is_caught(self, repo, capsys):
        target = repo / "src" / "repro" / "gnb" / "clean.py"
        target.write_text("import random\nrandom.random()\n")
        assert lint_main(["--changed", "HEAD"]) == 1
        assert "clean.py" in capsys.readouterr().out

    def test_changed_plus_paths_is_usage_error(self, repo, capsys):
        assert lint_main(["--changed", "--", "src"]) == 2
        assert "mutually exclusive" in capsys.readouterr().err

    def test_seeded_fixtures_are_exempt_from_the_gate(self, repo,
                                                      capsys):
        """A PR touching the violation fixtures must not turn the fast
        gate red: those files contain findings by design."""
        fixture = repo / "tests" / "lint" / "fixtures" / "phy"
        fixture.mkdir(parents=True)
        (fixture / "seeded.py").write_text("import time\nt = time.time()\n")
        assert lint_main(["--changed"]) == 0
        assert "nothing to lint" in capsys.readouterr().out

    def test_changed_prune_keeps_whole_program_entries(self, repo,
                                                       capsys):
        """R009 runs against a *partial* program under --changed, so
        its silence must never prune a grandfathered entry — even one
        for the very file being scanned."""
        baseline = repo / "lint-baseline.json"
        baseline.write_text(json.dumps({
            "version": 1,
            "entries": [{"rule": "R009", "path": "gnb/clean.py",
                         "snippet": "x = tracked", "count": 1,
                         "justification": "grandfathered"}]}))
        target = repo / "src" / "repro" / "gnb" / "clean.py"
        target.write_text("X = 1\n")
        capsys.readouterr()

        assert lint_main(["--changed", "HEAD"]) == 0
        assert "orphaned" not in capsys.readouterr().err

        assert lint_main(["--changed", "HEAD",
                          "--prune-baseline"]) == 0
        assert "pruned 0" in capsys.readouterr().out
        rewritten = json.loads(baseline.read_text())
        assert any(e["rule"] == "R009" for e in rewritten["entries"])


class TestBaselineOrphans:
    def test_orphan_warning_and_prune(self, fixtures_dir, tmp_path,
                                      capsys):
        """A baselined-then-fixed finding warns, then --prune-baseline
        rewrites the file and the warning goes away."""
        baseline = tmp_path / "baseline.json"
        assert lint_main([str(fixtures_dir), "--baseline", str(baseline),
                          "--write-baseline"]) == 0
        data = json.loads(baseline.read_text())
        data["entries"].append({
            "rule": "R001", "path": "ue/ghost.py",
            "snippet": "x = 1024", "count": 1,
            "justification": "file was deleted"})
        baseline.write_text(json.dumps(data))
        capsys.readouterr()

        # The ghost entry's directory was never scanned, so a scoped
        # run stays quiet about it...
        assert lint_main([str(fixtures_dir), "--baseline",
                          str(baseline)]) == 0
        assert "orphaned" not in capsys.readouterr().err

        # ...but a scan that *does* cover ue/ flags the dead entry.
        ghost_root = tmp_path / "tree" / "ue"
        ghost_root.mkdir(parents=True)
        (ghost_root / "other.py").write_text("Y = 1\n")
        assert lint_main([str(fixtures_dir), str(ghost_root.parent),
                          "--baseline", str(baseline)]) == 0
        assert "orphaned baseline entry" in capsys.readouterr().err

        assert lint_main([str(fixtures_dir), str(ghost_root.parent),
                          "--baseline", str(baseline),
                          "--prune-baseline"]) == 0
        assert "pruned 1" in capsys.readouterr().out
        rewritten = json.loads(baseline.read_text())
        assert not any(e["path"] == "ue/ghost.py"
                       for e in rewritten["entries"])

    def test_prune_without_baseline_is_usage_error(self, fixtures_dir,
                                                   tmp_path, capsys):
        missing = tmp_path / "nope.json"
        assert lint_main([str(fixtures_dir), "--baseline", str(missing),
                          "--prune-baseline"]) == 2
        assert "existing baseline" in capsys.readouterr().err

    def test_select_scan_cannot_orphan_other_rules(self, fixtures_dir,
                                                   tmp_path, capsys):
        """A --select run finds nothing for the unselected rules *by
        construction*; their baseline entries must survive a prune."""
        baseline = tmp_path / "baseline.json"
        assert lint_main([str(fixtures_dir), "--baseline", str(baseline),
                          "--write-baseline"]) == 0
        capsys.readouterr()

        assert lint_main([str(fixtures_dir), "--select", "R001",
                          "--baseline", str(baseline)]) == 0
        assert "orphaned" not in capsys.readouterr().err

        assert lint_main([str(fixtures_dir), "--select", "R001",
                          "--baseline", str(baseline),
                          "--prune-baseline"]) == 0
        assert "pruned 0" in capsys.readouterr().out
        rewritten = json.loads(baseline.read_text())
        surviving = {e["rule"] for e in rewritten["entries"]}
        assert {"R008", "R009", "R012"} <= surviving


class TestReproCliIntegration:
    def test_lint_subcommand_clean(self, capsys):
        assert repro_main(["lint", str(REPO_SRC)]) == 0
        assert "0 finding(s)" in capsys.readouterr().out

    def test_lint_subcommand_fails_on_fixtures(self, fixtures_dir,
                                               capsys):
        assert repro_main(["lint", str(fixtures_dir)]) == 1
        assert "R002" in capsys.readouterr().out
