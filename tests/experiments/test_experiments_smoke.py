"""Fast smoke tests over every experiment module.

The benchmarks run the figures at full scale; these runs are scaled to
fractions of a second so `pytest tests/` exercises every experiment
code path (series construction, summaries, table rendering) quickly.
"""

import pytest

from repro.experiments import (
    ext_congestion,
    ext_uplink,
    fig07_dci_miss,
    fig08_reg_error,
    fig09_throughput,
    fig10_active_time,
    fig11_ue_counts,
    fig12_processing,
    fig13_coverage,
    fig14_spare_capacity,
    fig15_mcs_retx,
    fig16_scenarios,
)
from repro.experiments.common import ExperimentError, run_session
from repro.gnb.cell_config import SRSRAN_PROFILE


class TestCommon:
    def test_run_session_labels(self):
        result = run_session(SRSRAN_PROFILE, n_ues=1, duration_s=0.2,
                             seed=1)
        assert result.label == "srsran/1ue"
        assert result.telemetry is result.scope.telemetry
        assert result.ue_truth_records(downlink=True) is not None

    def test_bad_duration(self):
        with pytest.raises(ExperimentError):
            run_session(SRSRAN_PROFILE, n_ues=1, duration_s=0.0)


class TestFig7:
    def test_smoke(self):
        row = fig07_dci_miss.measure_miss_rates(SRSRAN_PROFILE, 1, 0.5,
                                                seed=1)
        assert 0.0 <= row.dl_miss_rate <= 1.0
        result = fig07_dci_miss.to_result([row], [row])
        assert "srsran_dl_pct" in result.summary
        assert fig07_dci_miss.table([row], "t").render()


class TestFig8:
    def test_smoke(self):
        series = fig08_reg_error.measure_reg_errors(SRSRAN_PROFILE, 1,
                                                    0.5, seed=2)
        assert series.zero_fraction >= 0.9
        assert series.ccdf()
        result = fig08_reg_error.to_result([series], [series])
        assert result.summary["zero_fraction"] >= 0.9


class TestFig9:
    def test_smoke(self):
        mosolab = fig09_throughput.run_mosolab(duration_s=1.0)
        assert len(mosolab) == 4
        for series in mosolab:
            assert series.errors_kbps
            assert series.summary().median >= 0.0
        table = fig09_throughput.table(mosolab, "t")
        assert table.render()


class TestFig10And11:
    def test_smoke(self):
        series = fig10_active_time.run(duration_s=120.0, repetitions=1)
        assert len(series) == 6
        result = fig10_active_time.to_result(series)
        assert 0.7 <= result.summary["fraction_under_35s"] <= 1.0
        counts = fig11_ue_counts.run(duration_s=120.0)
        assert len(counts) == 4
        assert fig11_ue_counts.to_result(counts).summary["minute_p50"] > 0


class TestFig12:
    def test_smoke(self):
        row = fig12_processing.measure(
            fig12_processing.AMARISOFT_PROFILE, 2, 1, n_slots=1)
        assert row.mean_us > 0
        result = fig12_processing.to_result([row])
        assert result.series

    def test_workload_validation(self):
        with pytest.raises(Exception):
            fig12_processing.build_workload(
                fig12_processing.AMARISOFT_PROFILE, 0)


class TestFig13:
    def test_smoke(self):
        cell = fig13_coverage.measure_position(
            fig13_coverage.FLOOR_POSITIONS[0], n_ues=4, duration_s=0.3)
        assert 0.0 <= cell.dl_miss_rate <= 1.0
        assert cell.sniffer_snr_db > 0  # near position


class TestFig14:
    def test_smoke(self):
        traces = fig14_spare_capacity.run(duration_s=1.5)
        assert len(traces) == 2
        result = fig14_spare_capacity.to_result(traces)
        assert "median_tracking_error_kbps" in result.summary
        assert fig14_spare_capacity.table(traces).render()


class TestFig15:
    def test_smoke(self):
        telemetry = fig15_mcs_retx.measure_channel("awgn", 2, 0.5,
                                                   seed=3)
        assert telemetry.est_mcs
        r2 = fig15_mcs_retx.fidelity_r2([telemetry, telemetry])
        assert len(r2) == 2


class TestFig16:
    def test_smoke(self):
        aggregation = fig16_scenarios.run_aggregation(duration_s=1.0)
        assert aggregation.spare and aggregation.competing
        assert fig16_scenarios.aggregation_table(aggregation).render()


class TestExtensions:
    def test_uplink_smoke(self):
        analysis = ext_uplink.run(n_ues=2, duration_s=1.5)
        result = ext_uplink.to_result(analysis)
        assert result.figure == "ext-uplink"
        assert ext_uplink.table(analysis).render()

    def test_congestion_smoke(self):
        ran_aware, baseline = ext_congestion.run(duration_s=1.5)
        assert ran_aware.times and baseline.times
        result = ext_congestion.to_result(ran_aware, baseline)
        assert result.summary["ran_aware_goodput_mbps"] > 0
