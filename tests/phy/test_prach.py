"""Tests for PRACH preambles and the contention-based RACH."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gnb.rach import RachProcedure, RachState
from repro.phy.prach import (
    N_PREAMBLES,
    PREAMBLE_LEN,
    PrachConfig,
    PrachError,
    detect_preambles,
    generate_preamble,
    zadoff_chu_root,
)


class TestZadoffChu:
    def test_unit_magnitude(self):
        for root in (1, 5, 77, 138):
            seq = zadoff_chu_root(root)
            assert np.allclose(np.abs(seq), 1.0)

    def test_perfect_autocorrelation(self):
        """ZC sequences have ideal cyclic autocorrelation: a delta."""
        seq = zadoff_chu_root(7)
        corr = np.fft.ifft(np.fft.fft(seq) * np.fft.fft(seq).conj())
        assert abs(corr[0]) == pytest.approx(PREAMBLE_LEN)
        assert np.max(np.abs(corr[1:])) < 1e-9

    def test_low_cross_correlation_between_roots(self):
        a, b = zadoff_chu_root(3), zadoff_chu_root(4)
        corr = np.fft.ifft(np.fft.fft(a) * np.fft.fft(b).conj())
        # Prime-length ZC cross-correlation is exactly sqrt(L).
        assert np.allclose(np.abs(corr), np.sqrt(PREAMBLE_LEN), atol=1e-9)

    def test_root_range(self):
        with pytest.raises(PrachError):
            zadoff_chu_root(0)
        with pytest.raises(PrachError):
            zadoff_chu_root(PREAMBLE_LEN)


class TestPreambleNumbering:
    def test_all_64_distinct(self):
        seqs = {tuple(np.round(generate_preamble(i), 9))
                for i in range(N_PREAMBLES)}
        assert len(seqs) == N_PREAMBLES

    def test_shift_structure(self):
        config = PrachConfig(n_shifts_per_root=8, n_cs=17)
        root0, shift0 = config.preamble_to_root_shift(0)
        root1, shift1 = config.preamble_to_root_shift(1)
        root8, _ = config.preamble_to_root_shift(8)
        assert root0 == root1
        assert shift1 - shift0 == 17
        assert root8 == root0 + 1

    def test_validation(self):
        with pytest.raises(PrachError):
            PrachConfig(n_shifts_per_root=0)
        with pytest.raises(PrachError):
            PrachConfig(n_shifts_per_root=10, n_cs=17)
        with pytest.raises(PrachError):
            generate_preamble(64)


class TestDetection:
    @given(st.integers(0, N_PREAMBLES - 1))
    @settings(max_examples=20, deadline=None)
    def test_property_clean_detection(self, index):
        detections = detect_preambles(generate_preamble(index))
        assert detections
        assert detections[0].index == index
        assert detections[0].metric == pytest.approx(1.0, abs=1e-6)

    def test_superposed_preambles_both_detected(self):
        mix = generate_preamble(3) + generate_preamble(40)
        found = {d.index for d in detect_preambles(mix)}
        assert {3, 40} <= found

    def test_noise_only_no_detection(self, rng):
        for _ in range(5):
            noise = rng.normal(0, 1, PREAMBLE_LEN) \
                + 1j * rng.normal(0, 1, PREAMBLE_LEN)
            assert detect_preambles(noise) == []

    def test_detection_at_low_snr(self, rng):
        hits = 0
        for _ in range(10):
            noisy = generate_preamble(10) \
                + rng.normal(0, np.sqrt(0.5), PREAMBLE_LEN) \
                + 1j * rng.normal(0, np.sqrt(0.5), PREAMBLE_LEN)
            detections = detect_preambles(noisy)
            hits += bool(detections) and detections[0].index == 10
        assert hits >= 9

    def test_validation(self):
        with pytest.raises(PrachError):
            detect_preambles(np.zeros(10, dtype=complex))
        with pytest.raises(PrachError):
            detect_preambles(np.zeros(PREAMBLE_LEN, dtype=complex),
                             threshold=0.0)

    def test_silence_is_empty(self):
        assert detect_preambles(
            np.zeros(PREAMBLE_LEN, dtype=complex)) == []


class TestContention:
    def test_collisions_back_off_and_retry(self):
        procedure = RachProcedure(seed=3)
        for ue in range(32):
            procedure.request_connection(ue, 0)
        events = []
        for slot in range(400):
            events.extend(procedure.step(slot))
        assert procedure.completed == 32
        assert len(events) == 32
        # With 32 UEs drawing from 64 preambles, collisions are near
        # certain (birthday bound).
        assert procedure.collisions > 0

    def test_lone_ue_never_collides(self):
        procedure = RachProcedure(seed=4)
        procedure.request_connection(0, 0)
        for slot in range(30):
            procedure.step(slot)
        assert procedure.completed == 1
        assert procedure.collisions == 0

    def test_collided_attempt_keeps_waiting_state(self):
        procedure = RachProcedure(seed=5)
        # Force a collision by flooding one occasion.
        for ue in range(64):
            procedure.request_connection(ue, 0)
        procedure.step(0)
        waiting = [a for a in procedure._attempts.values()
                   if a.state is RachState.WAITING_OCCASION]
        sent = [a for a in procedure._attempts.values()
                if a.state is RachState.MSG1_SENT]
        assert waiting, "some UEs must have collided"
        assert sent, "some UEs must have won their preamble"
        for attempt in waiting:
            assert attempt.collisions >= 1
            assert attempt.next_action_slot > 0
