"""Stress and soak scenarios: scale, churn, and state boundedness."""

import pytest

from repro import NRScope, Simulation
from repro.analysis.matching import match_dcis
from repro.gnb.cell_config import AMARISOFT_PROFILE, SRSRAN_PROFILE
from repro.ue.population import ComeAndGoProcess, PopulationProfile


class TestScale:
    def test_sixty_four_ues_full_session(self):
        """The paper's largest lab configuration, end to end."""
        sim = Simulation.build(AMARISOFT_PROFILE, n_ues=64, seed=91,
                               channel="pedestrian", traffic="cbr",
                               rate_bps=3e5)
        scope = NRScope.attach(sim, snr_db=20.0)
        sim.run(seconds=1.5)

        assert len(sim.gnb.connected_ues) == 64
        # Contention delays but does not lose anyone.
        assert sim.gnb.rach.completed == 64
        assert scope.counters.msg4_seen + scope.counters.msg4_missed \
            == 64
        truth = [r for r in sim.gnb.log.downlink_records()
                 if r.search_space == "ue"]
        result = match_dcis(truth, scope.telemetry.records,
                            downlink=True)
        assert result.miss_rate < 0.02
        assert result.phantom == []
        # PDCCH capacity forces scheduling to spread across slots: at
        # most a handful of UEs per TTI, everyone over the session.
        served = {r.rnti for r in truth}
        assert len(served) >= 56  # nearly every UE got downlink data

    def test_heavy_churn_with_ongoing_telemetry(self):
        """Hundreds of short sessions must not corrupt sniffer state."""
        profile = PopulationProfile("stress", arrivals_per_second=8.0,
                                    holding_p90_s=1.5)
        sessions = ComeAndGoProcess(profile, seed=92).generate(4.0)
        assert len(sessions) > 20
        sim = Simulation.build(SRSRAN_PROFILE, n_ues=0, seed=92)
        sim.schedule_sessions(sessions, traffic="cbr", rate_bps=5e5)
        scope = NRScope.attach(sim, snr_db=20.0, idle_timeout_s=1.0)
        sim.run(seconds=5.0)

        # Every RACH completion was classified exactly once.
        assert scope.counters.msg4_total == \
            len(sim.gnb.log.msg4_records)
        # Idle pruning bounds the tracked set well below total arrivals.
        assert len(scope.tracked_rntis) < len(sessions)
        # Telemetry RNTIs are a subset of the RNTIs actually assigned.
        assigned = {m.tc_rnti for m in sim.gnb.log.msg4_records}
        assert set(scope.telemetry.rntis()) <= assigned


class TestStateBoundedness:
    def test_gnb_per_ue_state_is_reclaimed(self):
        """After churn, the gNB's per-UE maps hold only current UEs."""
        sim = Simulation.build(SRSRAN_PROFILE, n_ues=6, seed=93)
        sim.run(seconds=0.3)
        for ue_id in range(6):
            sim.gnb.remove_ue(ue_id, time_s=sim.now_s)
        sim.run(seconds=0.1)
        gnb = sim.gnb
        assert gnb.ues == {}
        assert gnb._harq == {}
        assert gnb._pending_retx == {}
        assert gnb._stash == {}
        assert gnb._reported_cqi == {}
        assert gnb._known_ul_backlog == {}

    def test_sniffer_state_is_reclaimed_after_pruning(self):
        sim = Simulation.build(SRSRAN_PROFILE, n_ues=3, seed=94)
        scope = NRScope.attach(sim, snr_db=20.0, idle_timeout_s=0.2)
        sim.run(seconds=0.4)
        rntis = list(scope.tracked_rntis)
        assert rntis
        for ue_id in range(3):
            sim.gnb.remove_ue(ue_id, time_s=sim.now_s)
        sim.run(seconds=1.0)
        assert scope.tracked_rntis == []
        assert scope.harq.rntis() == []
        # Telemetry history is retained (it is the session log), but
        # the live trackers were all reclaimed.
        for rnti in rntis:
            assert scope.telemetry.for_rnti(rnti)
        assert all(rnti not in scope.uci.rntis() for rnti in rntis)

    def test_spare_history_grows_linearly_not_quadratically(self):
        sim = Simulation.build(SRSRAN_PROFILE, n_ues=1, seed=95)
        scope = NRScope.attach(sim, snr_db=20.0)
        sim.run(seconds=0.5)
        first = len(scope.spare.history)
        sim.run(seconds=0.5)
        second = len(scope.spare.history)
        # One entry per synchronized downlink slot.
        assert second == pytest.approx(2 * first, rel=0.2)
