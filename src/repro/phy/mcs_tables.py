"""Modulation and coding scheme tables from TS 38.214 section 5.1.3.1.

The DCI carries a 5-bit MCS index; which table it indexes into is part of
the RRC configuration NR-Scope learns from MSG 4 (``mcs-Table`` in
``PDSCH-Config``). Both tables the paper's cells use are included: the
default 64QAM table and the 256QAM table (the Appendix B sample DCI shows
``mcs_table=256qam``).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.phy.modulation import QAM16, QAM64, QAM256, QPSK, ModulationScheme


class McsError(ValueError):
    """Raised for out-of-range MCS indices or unknown tables."""


@dataclass(frozen=True)
class McsEntry:
    """One MCS row: modulation order and target code rate."""

    index: int
    modulation: ModulationScheme
    code_rate_x1024: float

    @property
    def code_rate(self) -> float:
        """Target code rate R as a fraction."""
        return self.code_rate_x1024 / 1024.0

    @property
    def qm(self) -> int:
        """Modulation order (bits per symbol)."""
        return self.modulation.bits_per_symbol

    @property
    def spectral_efficiency(self) -> float:
        """Information bits per resource element (R * Qm)."""
        return self.code_rate * self.qm


def _rows(table: list[tuple[int, float]]) -> tuple[McsEntry, ...]:
    by_qm = {2: QPSK, 4: QAM16, 6: QAM64, 8: QAM256}
    return tuple(McsEntry(i, by_qm[qm], rate)
                 for i, (qm, rate) in enumerate(table))


#: Table 5.1.3.1-1 (qam64): indices 0..28; 29..31 are reserved for
#: retransmission signalling.
TABLE_QAM64 = _rows([
    (2, 120), (2, 157), (2, 193), (2, 251), (2, 308), (2, 379), (2, 449),
    (2, 526), (2, 602), (2, 679),
    (4, 340), (4, 378), (4, 434), (4, 490), (4, 553), (4, 616), (4, 658),
    (6, 438), (6, 466), (6, 517), (6, 567), (6, 616), (6, 666), (6, 719),
    (6, 772), (6, 822), (6, 873), (6, 910), (6, 948),
])

#: Table 5.1.3.1-2 (qam256): indices 0..27; 28..31 reserved.
TABLE_QAM256 = _rows([
    (2, 120), (2, 193), (2, 308), (2, 449), (2, 602),
    (4, 378), (4, 434), (4, 490), (4, 553), (4, 616), (4, 658),
    (6, 466), (6, 517), (6, 567), (6, 616), (6, 666), (6, 719), (6, 772),
    (6, 822), (6, 873),
    (8, 682.5), (8, 711), (8, 754), (8, 797), (8, 841), (8, 885),
    (8, 916.5), (8, 948),
])

TABLES = {"qam64": TABLE_QAM64, "qam256": TABLE_QAM256}


def mcs_entry(index: int, table: str = "qam64") -> McsEntry:
    """Look up an MCS index in the named table."""
    if table not in TABLES:
        raise McsError(f"unknown MCS table: {table!r}")
    rows = TABLES[table]
    if not 0 <= index < len(rows):
        raise McsError(
            f"MCS index {index} out of range for table {table!r}"
            f" (0..{len(rows) - 1})")
    return rows[index]


def max_mcs_index(table: str = "qam64") -> int:
    """Highest non-reserved MCS index of a table."""
    if table not in TABLES:
        raise McsError(f"unknown MCS table: {table!r}")
    return len(TABLES[table]) - 1


def mcs_for_spectral_efficiency(efficiency: float,
                                table: str = "qam64") -> McsEntry:
    """Highest-rate MCS whose spectral efficiency does not exceed the target.

    This mirrors the link-adaptation step a gNB performs when it converts a
    CQI report into an MCS choice; the simulator's scheduler uses it and
    NR-Scope's telemetry observes the result (paper Fig 15).
    """
    if table not in TABLES:
        raise McsError(f"unknown MCS table: {table!r}")
    rows = TABLES[table]
    best = rows[0]
    for row in rows:
        if row.spectral_efficiency <= efficiency and \
                row.spectral_efficiency >= best.spectral_efficiency:
            best = row
    return best
