"""5G NR numerology: subcarrier spacing, slot timing and indexing.

5G NR supports multiple subcarrier spacings (SCS); the slot (TTI) duration
shrinks proportionally (38.211 section 4.3.2).  NR-Scope's telemetry loop is
clocked by slots, so every other module converts between wall-clock time,
(frame, slot) indices and sample counts through this module.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.constants import (
    FRAME_DURATION_S,
    N_SC_PER_PRB,
    N_SYMBOLS_PER_SLOT,
    SFN_MODULO,
    SLOTS_PER_SUBFRAME,
    SUPPORTED_SCS_KHZ,
    TTI_DURATION_S,
)


class NumerologyError(ValueError):
    """Raised for unsupported subcarrier spacings or invalid indices."""


def mu_for_scs(scs_khz: int) -> int:
    """Return the numerology index ``mu`` with ``scs = 15 * 2**mu`` kHz."""
    if scs_khz not in SUPPORTED_SCS_KHZ:
        raise NumerologyError(f"unsupported subcarrier spacing: {scs_khz} kHz")
    return int(math.log2(scs_khz // 15))


def slots_per_frame(scs_khz: int) -> int:
    """Number of slots in one 10 ms system frame at the given SCS."""
    if scs_khz not in SLOTS_PER_SUBFRAME:
        raise NumerologyError(f"unsupported subcarrier spacing: {scs_khz} kHz")
    return SLOTS_PER_SUBFRAME[scs_khz] * 10


def slot_duration_s(scs_khz: int) -> float:
    """TTI duration in seconds (1 / 0.5 / 0.25 ms)."""
    if scs_khz not in TTI_DURATION_S:
        raise NumerologyError(f"unsupported subcarrier spacing: {scs_khz} kHz")
    return TTI_DURATION_S[scs_khz]


def prb_count_for_bandwidth(bandwidth_hz: float, scs_khz: int,
                            guard_fraction: float = 0.05) -> int:
    """Usable PRBs for a carrier bandwidth, approximating 38.101 Table 5.3.2-1.

    The 3GPP transmission-bandwidth tables reserve roughly 2-10% guard band
    depending on channel bandwidth; a 5% default reproduces the common
    configurations used in the paper (e.g. 51 PRB for 20 MHz at 30 kHz SCS,
    52 for 10 MHz at 15 kHz).
    """
    if scs_khz not in SUPPORTED_SCS_KHZ:
        raise NumerologyError(f"unsupported subcarrier spacing: {scs_khz} kHz")
    if bandwidth_hz <= 0:
        raise NumerologyError(f"bandwidth must be positive, got {bandwidth_hz}")
    usable_hz = bandwidth_hz * (1.0 - guard_fraction)
    prb_hz = scs_khz * 1e3 * N_SC_PER_PRB
    n_prb = int(usable_hz // prb_hz)
    if n_prb < 1:
        raise NumerologyError(
            f"bandwidth {bandwidth_hz} Hz too small for {scs_khz} kHz SCS")
    return n_prb


@dataclass(frozen=True, order=True)
class SlotClock:
    """A point in 5G air-interface time: (system frame, slot-in-frame).

    Instances are immutable and ordered; ``index`` gives a monotonically
    increasing slot counter that survives SFN wraps only within one wrap
    period, which is all the telemetry sessions in the paper need (a 10
    minute session spans ~59 SFN periods, so sessions track an epoch too).
    """

    sfn: int
    slot: int
    scs_khz: int = 30
    epoch: int = 0

    def __post_init__(self) -> None:
        if not 0 <= self.sfn < SFN_MODULO:
            raise NumerologyError(f"SFN out of range: {self.sfn}")
        if not 0 <= self.slot < slots_per_frame(self.scs_khz):
            raise NumerologyError(f"slot out of range: {self.slot}")

    @property
    def index(self) -> int:
        """Monotonic slot counter across frames and SFN wrap epochs."""
        per_frame = slots_per_frame(self.scs_khz)
        return ((self.epoch * SFN_MODULO) + self.sfn) * per_frame + self.slot

    @property
    def time_s(self) -> float:
        """Elapsed wall-clock seconds since slot 0 of epoch 0."""
        return self.index * slot_duration_s(self.scs_khz)

    @property
    def subframe(self) -> int:
        """Subframe (0-9) containing this slot."""
        return self.slot // SLOTS_PER_SUBFRAME[self.scs_khz]

    def advance(self, n_slots: int = 1) -> "SlotClock":
        """Return the clock ``n_slots`` later (may cross SFN wrap)."""
        if n_slots < 0:
            raise NumerologyError("cannot advance by a negative slot count")
        per_frame = slots_per_frame(self.scs_khz)
        total = self.index + n_slots
        epoch, rem = divmod(total, SFN_MODULO * per_frame)
        sfn, slot = divmod(rem, per_frame)
        return SlotClock(sfn=sfn, slot=slot, scs_khz=self.scs_khz, epoch=epoch)

    @classmethod
    def from_index(cls, index: int, scs_khz: int = 30) -> "SlotClock":
        """Build a clock from a monotonic slot counter."""
        return cls(0, 0, scs_khz).advance(index)


def symbol_duration_s(scs_khz: int) -> float:
    """Average OFDM symbol duration within a slot (CP included)."""
    return slot_duration_s(scs_khz) / N_SYMBOLS_PER_SLOT


def frames_elapsed(seconds: float) -> int:
    """Whole system frames elapsed in ``seconds`` of wall-clock time."""
    if seconds < 0:
        raise NumerologyError("time must be non-negative")
    return int(seconds / FRAME_DURATION_S)
