"""Fig 13: DCI miss rate across the floor (64 UEs).

Paper result: miss rates near zero over most of the floor, rising only
where the sniffer's signal quality degrades (far corners).
"""

from repro.analysis.report import print_tables
from repro.experiments import fig13_coverage as fig13


def test_fig13_floor_coverage(once):
    cells = once(fig13.run, n_ues=64, duration_s=1.0)
    result = fig13.to_result(cells)
    print()
    print_tables([fig13.table(cells)])
    print("summary:", {k: round(v, 3) for k, v in result.summary.items()})

    # Shape: near positions decode essentially everything; miss rate
    # rises with distance from the gNB.
    assert result.summary["near_dl_pct"] < 2.0
    assert result.summary["far_dl_pct"] >= result.summary["near_dl_pct"]
    # SNR gradient exists across the floor.
    snrs = [c.sniffer_snr_db for c in cells]
    assert max(snrs) - min(snrs) > 5.0
    # The best spot is essentially lossless ("users can find a location
    # with good signal quality and stay there").
    best = min(cells, key=lambda c: c.dl_miss_rate)
    assert best.dl_miss_rate < 0.02
