"""Fig 9: throughput estimation accuracy (paper section 5.2.2).

Three subfigures with three ground-truth sources:

* (a) Mosolab small cell, 1-4 UEs, tcpdump on the phone as truth;
* (b) Amarisoft, 8-64 UEs, the gNB log as truth;
* (c) the two T-Mobile cells with one UE in indoor/outdoor/moving
  states, tcpdump as truth.

The paper's headlines: p75 error 2.33 kbps (Mosolab), p95 35.856 kbps
(Amarisoft), median 42.56 kbps (T-Mobile); with per-UE average rates of
3.35-5.73 Mbit/s the majority of errors sit under 0.9%.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.metrics import ErrorSummary, ccdf_points, \
    summarize_errors, throughput_error_series
from repro.analysis.report import Table
from repro.experiments.common import FigureResult, SessionResult, \
    run_session
from repro.gnb.cell_config import AMARISOFT_PROFILE, MOSOLAB_PROFILE, \
    TMOBILE_N25_PROFILE, TMOBILE_N71_PROFILE

#: Bit-rate comparison window; the paper compares second-scale rates.
WINDOW_S = 0.5


@dataclass(frozen=True)
class ThroughputErrorSeries:
    """One CCDF line of Fig 9."""

    label: str
    errors_kbps: tuple[float, ...]
    mean_rate_bps: float

    def ccdf(self) -> list[tuple[float, float]]:
        return ccdf_points(list(self.errors_kbps))

    def summary(self) -> ErrorSummary:
        return summarize_errors(list(self.errors_kbps))

    @property
    def relative_error_pct(self) -> float:
        """Median error as a percentage of the average rate."""
        if self.mean_rate_bps <= 0:
            return 0.0
        return 100 * self.summary().median * 1e3 / self.mean_rate_bps


def _errors_vs_capture(result: SessionResult,
                       label: str) -> ThroughputErrorSeries:
    """Windowed |estimate - tcpdump| per tracked UE, pooled."""
    errors: list[float] = []
    rates: list[float] = []
    end = result.duration_s
    for rnti in result.scope.tracked_rntis:
        ue = result.sim.gnb.ue_by_rnti(rnti)
        if ue is None:
            continue
        est = result.telemetry.bitrate_series(rnti, WINDOW_S, end)
        truth = ue.capture.bitrate_series(WINDOW_S, end)
        errors.extend(throughput_error_series(est, truth))
        rates.append(ue.delivered_dl_bits / end)
    mean_rate = sum(rates) / len(rates) if rates else 0.0
    return ThroughputErrorSeries(label=label, errors_kbps=tuple(errors),
                                 mean_rate_bps=mean_rate)


def _errors_vs_log(result: SessionResult,
                   label: str) -> ThroughputErrorSeries:
    """Windowed |estimate - gNB log| per tracked UE, pooled (Fig 9b)."""
    errors: list[float] = []
    rates: list[float] = []
    end = result.duration_s
    truth_records = result.ue_truth_records(downlink=True)
    for rnti in result.scope.tracked_rntis:
        est = result.telemetry.bitrate_series(rnti, WINDOW_S, end)
        mine = [r for r in truth_records
                if r.rnti == rnti and not r.is_retransmission]
        truth = []
        t = WINDOW_S
        while t <= end + 1e-9:
            bits = sum(r.grant.tbs_bits for r in mine
                       if t - WINDOW_S <= r.time_s < t)
            truth.append((t, bits / WINDOW_S))
            t += WINDOW_S
        errors.extend(throughput_error_series(est, truth))
        total_bits = sum(r.grant.tbs_bits for r in mine)
        rates.append(total_bits / end)
    mean_rate = sum(rates) / len(rates) if rates else 0.0
    return ThroughputErrorSeries(label=label, errors_kbps=tuple(errors),
                                 mean_rate_bps=mean_rate)


def run_mosolab(duration_s: float = 5.0,
                seed: int = 9) -> list[ThroughputErrorSeries]:
    """Fig 9a: Mosolab, 1-4 UEs watching video / downloading files."""
    out = []
    for n_ues in (1, 2, 3, 4):
        result = run_session(MOSOLAB_PROFILE, n_ues=n_ues,
                             duration_s=duration_s, seed=seed + n_ues,
                             traffic="mixed", channel="pedestrian")
        out.append(_errors_vs_capture(result, f"{n_ues} UE"))
    return out


def run_amarisoft(duration_s: float = 2.5,
                  seed: int = 10) -> list[ThroughputErrorSeries]:
    """Fig 9b: Amarisoft, 8-64 UEs, gNB log ground truth."""
    out = []
    for n_ues in (8, 16, 32, 64):
        result = run_session(AMARISOFT_PROFILE, n_ues=n_ues,
                             duration_s=duration_s, seed=seed + n_ues,
                             traffic="mixed", channel="pedestrian")
        out.append(_errors_vs_log(result, f"{n_ues} UEs"))
    return out


def run_tmobile(duration_s: float = 5.0,
                seed: int = 11) -> list[ThroughputErrorSeries]:
    """Fig 9c: T-Mobile cells 1 and 2, UE indoor/outdoor/moving.

    Commercial distance shows up as a weaker sniffer link (cell 1 is
    350 m away, cell 2 serves from 1460 m), and the UE state as its
    channel/mobility model.
    """
    scenarios = [("indoor", "pedestrian", "static", 6.0),
                 ("outdoor", "normal", "static", 10.0),
                 ("moving", "vehicle", "moving", 6.0)]
    out = []
    for index, (profile, cell) in enumerate(
            ((TMOBILE_N25_PROFILE, 1), (TMOBILE_N71_PROFILE, 2))):
        for state, channel, mobility, sniffer_snr in scenarios:
            result = run_session(profile, n_ues=1, duration_s=duration_s,
                                 seed=seed + index, traffic="video",
                                 channel=channel, mobility=mobility,
                                 ue_snr_db=18.0,
                                 sniffer_snr_db=sniffer_snr)
            out.append(_errors_vs_capture(result, f"{state} ({cell})"))
    return out


def to_result(mosolab, amarisoft, tmobile) -> FigureResult:
    result = FigureResult(figure="fig9")
    for prefix, group in (("mosolab", mosolab), ("amarisoft", amarisoft),
                          ("tmobile", tmobile)):
        for series in group:
            if series.errors_kbps:
                result.add_series(f"{prefix}-{series.label}",
                                  series.ccdf())
    result.summary["mosolab_p75_kbps"] = summarize_errors(
        [e for s in mosolab for e in s.errors_kbps]).p75
    result.summary["amarisoft_p95_kbps"] = summarize_errors(
        [e for s in amarisoft for e in s.errors_kbps]).p95
    result.summary["tmobile_median_kbps"] = summarize_errors(
        [e for s in tmobile for e in s.errors_kbps]).median
    return result


def table(group: list[ThroughputErrorSeries], title: str) -> Table:
    return Table(
        title=title,
        columns=("series", "median kbps", "p75 kbps", "p95 kbps",
                 "avg rate Mbps", "median err %"),
        rows=tuple((s.label, s.summary().median, s.summary().p75,
                    s.summary().p95, s.mean_rate_bps / 1e6,
                    s.relative_error_pct) for s in group))
