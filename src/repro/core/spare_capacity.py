"""Fair-share spare RAN capacity estimation (paper section 5.4.1).

"In each TTI, we can split unused REs evenly across UEs and recalculate
these REs to yield a fair-share spare capacity attributable to each UE."
The estimator knows the carrier width from SIB 1, sums the PRBs of the
DCIs it decoded in the TTI, splits the remainder evenly, and prices each
UE's share at that UE's *own* current MCS — which is why two UEs with
identical spare PRBs report different spare bit rates (Fig 14a).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.phy.grant import GrantConfig
from repro.phy.mcs_tables import mcs_entry
from repro.phy.tbs import transport_block_size


class SpareCapacityError(ValueError):
    """Raised for inconsistent TTI accounting."""


@dataclass(frozen=True)
class TtiUsage:
    """One TTI's decoded allocation picture."""

    slot_index: int
    time_s: float
    used_prbs: int
    per_ue_prbs: dict[int, int]       # rnti -> PRBs this TTI
    per_ue_mcs: dict[int, int]        # rnti -> MCS index this TTI


@dataclass(frozen=True)
class SpareShare:
    """Fair-share spare capacity for one UE in one TTI."""

    rnti: int
    spare_prbs: int
    spare_bits: int
    used_prbs: int
    used_bits: int


class SpareCapacityEstimator:
    """Turns per-TTI decoded grants into spare-capacity shares."""

    def __init__(self, grant_config: GrantConfig, n_prb_carrier: int,
                 n_symbols: int = 12) -> None:
        if n_prb_carrier < 1:
            raise SpareCapacityError(
                f"carrier must have PRBs: {n_prb_carrier}")
        self.grant_config = grant_config
        self.n_prb_carrier = n_prb_carrier
        self.n_symbols = n_symbols
        self._last_mcs: dict[int, int] = {}
        self.history: list[tuple[TtiUsage, list[SpareShare]]] = []

    def _bits_for(self, n_prb: int, mcs_index: int) -> int:
        if n_prb < 1:
            return 0
        mcs = mcs_entry(mcs_index, self.grant_config.mcs_table)
        return transport_block_size(
            n_prb, self.n_symbols, mcs,
            n_layers=self.grant_config.n_layers,
            n_dmrs_per_prb=self.grant_config.n_dmrs_per_prb,
            n_oh_per_prb=self.grant_config.xoverhead_res).tbs_bits

    def observe_tti(self, usage: TtiUsage,
                    known_rntis: list[int] | None = None) \
            -> list[SpareShare]:
        """Compute the fair-share split for one TTI.

        ``known_rntis`` widens the split to UEs that were idle this TTI
        (they still own a fair share of the spare room); their MCS falls
        back to the last one observed.
        """
        if usage.used_prbs > self.n_prb_carrier:
            raise SpareCapacityError(
                f"decoded {usage.used_prbs} PRBs on a {self.n_prb_carrier}"
                f" PRB carrier")
        self._last_mcs.update(usage.per_ue_mcs)
        participants = sorted(set(usage.per_ue_prbs)
                              | set(known_rntis or []))
        shares: list[SpareShare] = []
        spare_prbs_total = self.n_prb_carrier - usage.used_prbs
        if participants:
            per_ue_spare = spare_prbs_total // len(participants)
            for rnti in participants:
                mcs_index = usage.per_ue_mcs.get(
                    rnti, self._last_mcs.get(rnti, 0))
                used = usage.per_ue_prbs.get(rnti, 0)
                used_bits = self._bits_for(used, mcs_index) if used else 0
                spare_bits = self._bits_for(per_ue_spare, mcs_index)
                shares.append(SpareShare(
                    rnti=rnti, spare_prbs=per_ue_spare,
                    spare_bits=spare_bits, used_prbs=used,
                    used_bits=used_bits))
        self.history.append((usage, shares))
        return shares

    def spare_rate_series(self, rnti: int, slot_duration_s: float) \
            -> list[tuple[float, float]]:
        """(time, spare bits/s) per TTI for one UE (Fig 14a's 'Spare')."""
        series = []
        for usage, shares in self.history:
            for share in shares:
                if share.rnti == rnti:
                    series.append((usage.time_s,
                                   share.spare_bits / slot_duration_s))
        return series

    def prb_series(self, rnti: int) -> list[tuple[int, int, int]]:
        """(slot, used PRBs, spare share PRBs) per TTI (Fig 14b)."""
        rows = []
        for usage, shares in self.history:
            for share in shares:
                if share.rnti == rnti:
                    rows.append((usage.slot_index, share.used_prbs,
                                 share.spare_prbs))
        return rows
