"""Fig 7: DCI miss rate vs number of UEs (paper section 5.2.1).

Fig 7a: srsRAN network, 1-4 phones.  Fig 7b: Amarisoft network, 8-64
emulated UEs.  Both report downlink and uplink DCI miss rates; the paper
measures 0.33%/0.28% (srsRAN) and 0.93%/0.31% (Amarisoft) — "two 9's of
reliability".
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.matching import match_dcis
from repro.analysis.report import Table
from repro.experiments.common import FigureResult, run_session
from repro.gnb.cell_config import AMARISOFT_PROFILE, SRSRAN_PROFILE

#: UE counts per subfigure, matching the paper's x axes.
SRSRAN_UE_COUNTS = (1, 2, 3, 4)
AMARISOFT_UE_COUNTS = (8, 16, 32, 64)


@dataclass(frozen=True)
class MissRateRow:
    """One bar of Fig 7."""

    network: str
    n_ues: int
    dl_miss_rate: float
    ul_miss_rate: float
    n_dl_dcis: int
    n_ul_dcis: int


def measure_miss_rates(profile, n_ues: int, duration_s: float,
                       seed: int) -> MissRateRow:
    """Run one session and match both directions against the log."""
    result = run_session(profile, n_ues=n_ues, duration_s=duration_s,
                         seed=seed, channel="pedestrian")
    estimates = result.telemetry.records
    dl = match_dcis(result.ue_truth_records(downlink=True), estimates,
                    downlink=True)
    ul = match_dcis(result.ue_truth_records(downlink=False), estimates,
                    downlink=False)
    return MissRateRow(network=profile.name, n_ues=n_ues,
                       dl_miss_rate=dl.miss_rate, ul_miss_rate=ul.miss_rate,
                       n_dl_dcis=dl.n_ground_truth,
                       n_ul_dcis=ul.n_ground_truth)


def run(duration_s: float = 4.0, seed: int = 7) \
        -> tuple[list[MissRateRow], list[MissRateRow]]:
    """Both subfigures: (srsRAN rows, Amarisoft rows)."""
    srsran = [measure_miss_rates(SRSRAN_PROFILE, n, duration_s, seed + n)
              for n in SRSRAN_UE_COUNTS]
    amarisoft = [measure_miss_rates(AMARISOFT_PROFILE, n,
                                    max(duration_s / 2, 1.0), seed + n)
                 for n in AMARISOFT_UE_COUNTS]
    return srsran, amarisoft


def to_result(srsran: list[MissRateRow],
              amarisoft: list[MissRateRow]) -> FigureResult:
    """Summarise both subfigures with the paper's headline averages."""
    result = FigureResult(figure="fig7")
    result.add_series("srsran-dl",
                      [(float(r.n_ues), 100 * r.dl_miss_rate)
                       for r in srsran])
    result.add_series("srsran-ul",
                      [(float(r.n_ues), 100 * r.ul_miss_rate)
                       for r in srsran])
    result.add_series("amarisoft-dl",
                      [(float(r.n_ues), 100 * r.dl_miss_rate)
                       for r in amarisoft])
    result.add_series("amarisoft-ul",
                      [(float(r.n_ues), 100 * r.ul_miss_rate)
                       for r in amarisoft])
    for name, rows in (("srsran", srsran), ("amarisoft", amarisoft)):
        dl_total = sum(r.n_dl_dcis for r in rows)
        dl_missed = sum(r.dl_miss_rate * r.n_dl_dcis for r in rows)
        ul_total = sum(r.n_ul_dcis for r in rows)
        ul_missed = sum(r.ul_miss_rate * r.n_ul_dcis for r in rows)
        result.summary[f"{name}_dl_pct"] = 100 * dl_missed / max(dl_total, 1)
        result.summary[f"{name}_ul_pct"] = 100 * ul_missed / max(ul_total, 1)
    return result


def table(rows: list[MissRateRow], title: str) -> Table:
    """The printed form of one subfigure."""
    return Table(
        title=title,
        columns=("UEs", "DL miss %", "UL miss %", "DL DCIs", "UL DCIs"),
        rows=tuple((r.n_ues, 100 * r.dl_miss_rate, 100 * r.ul_miss_rate,
                    r.n_dl_dcis, r.n_ul_dcis) for r in rows))
