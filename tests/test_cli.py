"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import main


class TestCells:
    def test_lists_all_profiles(self, capsys):
        assert main(["cells"]) == 0
        out = capsys.readouterr().out
        for name in ("srsran", "mosolab", "amarisoft", "tmobile-n25",
                     "tmobile-n71"):
            assert name in out


class TestSniff:
    def test_basic_session(self, capsys):
        assert main(["sniff", "--seconds", "0.5", "--ues", "1",
                     "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "cell srsran" in out
        assert "UE 0x" in out
        assert "Mbps DL" in out

    def test_profile_selection(self, capsys):
        assert main(["sniff", "--profile", "tmobile-n25",
                     "--seconds", "0.3"]) == 0
        out = capsys.readouterr().out
        assert "FDD" in out

    def test_report_flag(self, capsys):
        assert main(["sniff", "--seconds", "0.5", "--ues", "2",
                     "--report"]) == 0
        out = capsys.readouterr().out
        assert "Telemetry session" in out
        assert "Per-UE telemetry" in out

    def test_json_export(self, tmp_path, capsys):
        path = tmp_path / "telemetry.jsonl"
        assert main(["sniff", "--seconds", "0.5", "--json",
                     str(path)]) == 0
        lines = path.read_text().strip().splitlines()
        assert lines
        record = json.loads(lines[0])
        assert "rnti" in record and "tbs_bits" in record

    def test_rejects_unknown_profile(self):
        with pytest.raises(SystemExit):
            main(["sniff", "--profile", "fantasy"])


class TestFigure:
    def test_fig10(self, capsys):
        assert main(["figure", "fig10"]) == 0
        assert "active time" in capsys.readouterr().out

    def test_fig11(self, capsys):
        assert main(["figure", "fig11"]) == 0
        assert "per second" in capsys.readouterr().out

    def test_quick_fig7(self, capsys):
        assert main(["figure", "fig7", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "Fig 7a" in out and "Fig 7b" in out

    def test_rejects_unknown_figure(self):
        with pytest.raises(SystemExit):
            main(["figure", "fig99"])


class TestSurvey:
    def test_survey_stats(self, capsys):
        assert main(["survey", "--seconds", "120"]) == 0
        out = capsys.readouterr().out
        assert "distinct UEs" in out
        assert "p90" in out
