"""Tests for the sliding-window throughput estimator."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.throughput import SlidingWindowEstimator, ThroughputBank, \
    ThroughputError


class TestSlidingWindow:
    def test_constant_stream(self):
        estimator = SlidingWindowEstimator(window_s=0.1)
        # 1000 bits every 1 ms = 1 Mbps.
        for i in range(500):
            estimator.add(i * 1e-3, 1000)
        assert estimator.rate_bps(0.499) == pytest.approx(1e6, rel=0.02)

    def test_rate_decays_after_traffic_stops(self):
        estimator = SlidingWindowEstimator(window_s=0.1)
        for i in range(100):
            estimator.add(i * 1e-3, 1000)
        busy = estimator.rate_bps(0.1)
        assert estimator.rate_bps(0.5) == 0.0
        assert busy > 0

    def test_window_eviction_exact(self):
        estimator = SlidingWindowEstimator(window_s=1.0)
        estimator.add(0.0, 100)
        estimator.add(0.5, 200)
        assert estimator.rate_bps(0.9) == pytest.approx(300.0)
        assert estimator.rate_bps(1.05) == pytest.approx(200.0)

    def test_average_rate(self):
        estimator = SlidingWindowEstimator()
        estimator.add(0.0, 1000)
        estimator.add(1.0, 1000)
        assert estimator.average_rate_bps(2.0) == pytest.approx(1000.0)

    def test_validation(self):
        with pytest.raises(ThroughputError):
            SlidingWindowEstimator(window_s=0.0)
        with pytest.raises(ThroughputError):
            SlidingWindowEstimator().add(0.0, -5)
        with pytest.raises(ThroughputError):
            SlidingWindowEstimator().average_rate_bps(0.0)

    @given(st.lists(st.tuples(st.floats(0, 100), st.integers(0, 10**6)),
                    min_size=1, max_size=50))
    @settings(max_examples=40, deadline=None)
    def test_property_total_bits_conserved(self, samples):
        estimator = SlidingWindowEstimator(window_s=0.5)
        ordered = sorted(samples)
        for t, bits in ordered:
            estimator.add(t, bits)
        assert estimator.total_bits == sum(b for _, b in samples)

    @given(st.floats(0.01, 10.0))
    @settings(max_examples=20, deadline=None)
    def test_property_rate_nonnegative(self, window):
        estimator = SlidingWindowEstimator(window_s=window)
        estimator.add(1.0, 500)
        assert estimator.rate_bps(1.0) >= 0.0


class TestBank:
    def test_per_ue_per_direction(self):
        bank = ThroughputBank(window_s=1.0)
        bank.add(0x4601, True, 0.5, 1000)
        bank.add(0x4601, False, 0.5, 500)
        bank.add(0x4602, True, 0.5, 2000)
        assert bank.rate_bps(0x4601, 1.0) == pytest.approx(1000.0)
        assert bank.rate_bps(0x4601, 1.0, downlink=False) == \
            pytest.approx(500.0)
        assert bank.rate_bps(0x4602, 1.0) == pytest.approx(2000.0)

    def test_unknown_ue_rate_zero(self):
        bank = ThroughputBank()
        assert bank.rate_bps(0x9999, 1.0) == 0.0

    def test_forget(self):
        bank = ThroughputBank(window_s=10.0)
        bank.add(0x4601, True, 0.5, 1000)
        bank.forget(0x4601)
        assert bank.rate_bps(0x4601, 1.0) == 0.0
