"""Tests for the staged slot runtime (executors, ordering, backpressure)."""

import threading
import time

import pytest

from repro import NRScope, Simulation
from repro.core.dci_decoder import GridDciDecoder
from repro.core.rach_sniffer import RachSniffer
from repro.core.runtime import InlineExecutor, ProcessExecutor, \
    SlotContext, SlotRuntime, SlotRuntimeError, Stage, ThreadedExecutor, \
    build_executor, shard_ues, sharded_grid_decode
from repro.gnb.cell_config import SRSRAN_PROFILE
from repro.phy.dci import Dci, DciFormat, riv_encode
from repro.phy.pdcch import PdcchCandidate, encode_pdcch
from repro.phy.resource_grid import ResourceGrid
from repro.rrc.messages import RrcSetup


def build_tracked(n_ues=3):
    """A tracked-UE table with real search spaces."""
    sniffer = RachSniffer(bwp_n_prb=51)
    setup = RrcSetup(tc_rnti=0x4601,
                     search_space=SRSRAN_PROFILE.search_space_config())
    sniffer.discover(0x4601, 0.0, setup)
    for i in range(1, n_ues):
        sniffer.discover(0x4601 + i, 0.0, None)
    return sniffer.tracked


def build_slot(tracked, slot_index=4):
    """Encode one real DCI per tracked UE into a grid."""
    grid = ResourceGrid(SRSRAN_PROFILE.n_prb)
    cfg = SRSRAN_PROFILE.dci_size_config()
    used = set()
    encoded = 0
    for rnti, ue in tracked.items():
        space = ue.search_space
        for start in space.candidate_cces(2, slot_index, rnti):
            cces = set(range(start, start + 2))
            if cces & used:
                continue
            dci = Dci(format=DciFormat.DL_1_1, rnti=rnti,
                      freq_alloc_riv=riv_encode(0, 4, 51), time_alloc=1,
                      mcs=10, ndi=0, rv=0, harq_id=0)
            encode_pdcch(dci, cfg, space.coreset,
                         PdcchCandidate(start, 2), grid,
                         n_id=SRSRAN_PROFILE.cell_id,
                         slot_index=slot_index)
            used |= cces
            encoded += 1
            break
    return grid, encoded


def make_decoder():
    return GridDciDecoder(dci_cfg=SRSRAN_PROFILE.dci_size_config(),
                          n_id=SRSRAN_PROFILE.cell_id, noise_var=1e-3)


class TestSharding:
    def test_covers_all_ues(self):
        tracked = build_tracked(5)
        shards = shard_ues(tracked, 3)
        assert len(shards) == 3
        merged = {}
        for shard in shards:
            merged.update(shard)
        assert merged == tracked

    def test_balanced(self):
        shards = shard_ues(build_tracked(6), 3)
        assert all(len(s) == 2 for s in shards)

    def test_insertion_order_does_not_matter(self):
        # The shard layout must depend on the table's contents only, so
        # inline and threaded sessions shard identically even if their
        # dicts were populated in different orders.
        tracked = build_tracked(6)
        reversed_table = dict(sorted(tracked.items(), reverse=True))
        assert shard_ues(tracked, 3) == shard_ues(reversed_table, 3)
        for shard in shard_ues(tracked, 3):
            assert list(shard) == sorted(shard)

    def test_rejects_zero_shards(self):
        with pytest.raises(SlotRuntimeError):
            shard_ues({}, 0)


class TestShardedDecode:
    def test_single_thread_decodes_everything(self):
        tracked = build_tracked(3)
        grid, encoded = build_slot(tracked)
        decoded = sharded_grid_decode(make_decoder(), grid, 4, tracked, 1)
        assert len(decoded) == encoded

    def test_sharded_matches_single_thread(self):
        tracked = build_tracked(4)
        grid, encoded = build_slot(tracked)
        single = sharded_grid_decode(make_decoder(), grid, 4, tracked, 1)
        executor = ThreadedExecutor(n_workers=1, n_dci_threads=4)
        sharded = sharded_grid_decode(make_decoder(), grid, 4, tracked, 4,
                                      mapper=executor.map)
        executor.shutdown()
        key = lambda d: (d.dci.rnti, d.dci.format.value)  # noqa: E731
        assert sorted(map(key, single)) == sorted(map(key, sharded))


def make_runtime(executor=None, **kwargs):
    """A two-stage runtime: tag on the backbone, square in parallel,
    collect in the sink."""
    committed = []

    def backbone(ctx):
        ctx.output = dict(ctx.output)

    def work(ctx):
        ctx.output["square"] = ctx.output["n"] ** 2

    def sink(ctx):
        committed.append(ctx)

    runtime = SlotRuntime(
        stages=[Stage("backbone", backbone),
                Stage("work", work, parallel=True),
                Stage("sink", sink, sink=True)],
        executor=executor, **kwargs)
    return runtime, committed


class TestSlotRuntime:
    def test_inline_processes_synchronously(self):
        runtime, committed = make_runtime(InlineExecutor())
        for n in range(5):
            runtime.submit({"n": n})
        assert [c.output["square"] for c in committed] == \
            [n * n for n in range(5)]
        stats = runtime.stats()
        assert stats.slots_submitted == stats.slots_completed == 5
        assert stats.slots_dropped == 0
        assert stats.stage("work").calls == 5
        assert stats.stage("work").mean_us >= 0.0

    def test_threaded_commits_in_slot_order(self):
        runtime, committed = make_runtime(
            ThreadedExecutor(n_workers=4, queue_depth=64))
        for n in range(40):
            runtime.submit({"n": n})
        runtime.close()
        assert [c.output["n"] for c in committed] == list(range(40))
        assert [c.output["square"] for c in committed] == \
            [n * n for n in range(40)]
        assert runtime.stats().slots_completed == 40

    def test_halted_slot_skips_tail(self):
        hits = []
        runtime = SlotRuntime(stages=[
            Stage("gate", lambda ctx: False if ctx.output < 0 else None),
            Stage("tail", hits.append, sink=True)])
        runtime.submit(-1)
        runtime.submit(1)
        assert len(hits) == 1
        assert runtime.stats().slots_completed == 1

    def test_worker_error_raised_at_commit(self):
        def boom(ctx):
            raise RuntimeError("decode exploded")

        runtime = SlotRuntime(
            stages=[Stage("work", boom, parallel=True)],
            executor=ThreadedExecutor(n_workers=1))
        with pytest.raises(SlotRuntimeError, match="decode exploded"):
            runtime.submit(object())
            runtime.flush()
        runtime.executor.shutdown()

    def test_reset_stats(self):
        runtime, _ = make_runtime(InlineExecutor())
        runtime.submit({"n": 2})
        runtime.reset_stats()
        stats = runtime.stats()
        assert stats.slots_submitted == 0
        assert stats.stage("work").calls == 0

    def test_rejects_two_parallel_stages(self):
        with pytest.raises(SlotRuntimeError):
            SlotRuntime(stages=[Stage("a", lambda c: None, parallel=True),
                                Stage("b", lambda c: None, parallel=True)])

    def test_rejects_backbone_after_sink(self):
        with pytest.raises(SlotRuntimeError):
            SlotRuntime(stages=[Stage("sink", lambda c: None, sink=True),
                                Stage("late", lambda c: None)])

    def test_rejects_duplicate_stage_names(self):
        with pytest.raises(SlotRuntimeError):
            SlotRuntime(stages=[Stage("x", lambda c: None),
                                Stage("x", lambda c: None)])

    def test_unknown_stage_lookup(self):
        runtime, _ = make_runtime(InlineExecutor())
        with pytest.raises(SlotRuntimeError):
            runtime.stats().stage("nonexistent")


class TestBackpressure:
    def test_overload_drops_with_accounting_and_never_deadlocks(self):
        """Feed slots far faster than the single stalled worker can
        process: the runtime must shed them with accounting, then
        flush cleanly — no stall, no deadlock."""
        release = threading.Event()

        def slow(ctx):
            release.wait(5.0)

        runtime = SlotRuntime(
            stages=[Stage("slow", slow, parallel=True),
                    Stage("sink", lambda ctx: None, sink=True)],
            executor=ThreadedExecutor(n_workers=1, queue_depth=2),
            drop_cost=lambda ctx: 3)
        start = time.monotonic()
        for n in range(50):
            runtime.submit(n)
        assert time.monotonic() - start < 2.0, "submission must not stall"
        release.set()
        runtime.close()
        stats = runtime.stats()
        assert stats.slots_dropped > 0
        assert stats.dcis_dropped == 3 * stats.slots_dropped
        # Dropped slots still commit the sink, so every slot completes.
        assert stats.slots_completed == 50
        assert stats.drop_rate > 0.0

    def test_dropped_context_flagged(self):
        dropped_flags = []
        runtime = SlotRuntime(
            stages=[Stage("slow", lambda ctx: time.sleep(0.05),
                          parallel=True),
                    Stage("sink",
                          lambda ctx: dropped_flags.append(ctx.dropped),
                          sink=True)],
            executor=ThreadedExecutor(n_workers=1, queue_depth=1))
        for n in range(20):
            runtime.submit(n)
        runtime.close()
        assert any(dropped_flags)
        assert not dropped_flags[0]

    def test_flush_timeout_raises(self):
        runtime = SlotRuntime(
            stages=[Stage("hang", lambda ctx: time.sleep(10.0),
                          parallel=True)],
            executor=ThreadedExecutor(n_workers=1))
        runtime.submit(object())
        with pytest.raises(SlotRuntimeError, match="timed out"):
            runtime.flush(timeout_s=0.05)


class TestScopeBackpressure:
    def test_scope_sheds_slots_as_counted_dci_misses(self):
        """A scope whose executor cannot keep up reports the shed slots
        in both RuntimeStats and its own DCI-miss counters — and the
        session still terminates."""
        release = threading.Event()

        class StallingExecutor(ThreadedExecutor):
            def __init__(self):
                super().__init__(n_workers=1, queue_depth=1)

            def try_submit(self, seq, thunk):
                def stalled():
                    release.wait(10.0)
                    return thunk()
                return super().try_submit(seq, stalled)

        sim = Simulation.build(SRSRAN_PROFILE, n_ues=2, seed=11)
        scope = NRScope.attach(sim, snr_db=20.0,
                               executor=StallingExecutor())
        sim.run_slots(400)
        release.set()
        scope.close()
        stats = scope.runtime_stats
        assert stats.slots_dropped > 0
        assert scope.counters.slots_dropped == stats.slots_dropped
        assert scope.counters.dcis_dropped == stats.dcis_dropped
        assert scope.counters.dcis_dropped > 0


class TestExecutors:
    def test_build_executor_names(self):
        assert build_executor("inline").name == "inline"
        threaded = build_executor("threaded", n_workers=2,
                                  n_dci_threads=3, queue_depth=7)
        assert threaded.n_workers == 2
        assert threaded.n_dci_threads == 3
        assert threaded.queue_depth == 7
        passthrough = InlineExecutor()
        assert build_executor(passthrough) is passthrough
        with pytest.raises(SlotRuntimeError):
            build_executor("quantum")

    def test_worker_count_suffix(self):
        process = build_executor("process:2")
        assert isinstance(process, ProcessExecutor)
        assert process.name == "process"
        assert process.n_workers == 2
        assert build_executor("threaded:3").n_workers == 3
        with pytest.raises(SlotRuntimeError):
            build_executor("inline:2")
        with pytest.raises(SlotRuntimeError):
            build_executor("process:lots")

    def test_process_rejects_bad_config(self):
        for kwargs in ({"n_workers": 0}, {"queue_depth": 0}):
            with pytest.raises(SlotRuntimeError):
                ProcessExecutor(**kwargs)

    def test_threaded_rejects_bad_config(self):
        for kwargs in ({"n_workers": 0}, {"n_dci_threads": 0},
                       {"queue_depth": 0}):
            with pytest.raises(SlotRuntimeError):
                ThreadedExecutor(**kwargs)

    def test_map_preserves_order(self):
        executor = ThreadedExecutor(n_workers=1, n_dci_threads=4)
        assert executor.map(lambda x: x * 2, [3, 1, 2]) == [6, 2, 4]
        executor.shutdown()

    def test_shutdown_idempotent(self):
        executor = ThreadedExecutor(n_workers=1)
        executor.start()
        executor.shutdown()
        executor.shutdown()


class TestCrossExecutorDeterminism:
    @pytest.mark.parametrize("fidelity,seconds",
                             [("message", 1.0), ("iq", 0.1)])
    def test_identical_telemetry_log(self, fidelity, seconds):
        """The acceptance bar: a seeded end-to-end session produces an
        identical TelemetryLog under InlineExecutor and
        ThreadedExecutor(n_workers=4)."""

        def session(executor, **kwargs):
            sim = Simulation.build(SRSRAN_PROFILE, n_ues=4, seed=42,
                                   fidelity=fidelity)
            scope = NRScope.attach(sim, snr_db=18.0, executor=executor,
                                   idle_timeout_s=0.4, **kwargs)
            sim.run(seconds=seconds)
            scope.close()
            return scope

        inline = session("inline")
        threaded = session("threaded", n_workers=4, n_dci_threads=2)
        assert threaded.runtime_stats.slots_dropped == 0, \
            "determinism comparison needs a drop-free run"
        assert inline.telemetry.records == threaded.telemetry.records
        assert inline.counters == threaded.counters
        assert inline.tracked_rntis == threaded.tracked_rntis
        assert inline.uci.observations == threaded.uci.observations

    @pytest.mark.parametrize("fidelity,seconds",
                             [("message", 0.5), ("iq", 0.1)])
    def test_process_executor_matches_inline(self, fidelity, seconds):
        """Same bar across the process boundary: the spawned-worker
        session (slim wire payloads, per-worker kernel caches) commits
        the identical TelemetryLog."""

        def session(executor, **kwargs):
            sim = Simulation.build(SRSRAN_PROFILE, n_ues=4, seed=42,
                                   fidelity=fidelity)
            scope = NRScope.attach(sim, snr_db=18.0, executor=executor,
                                   idle_timeout_s=5.0, **kwargs)
            sim.run(seconds=seconds)
            scope.close()
            return scope

        inline = session("inline")
        # A deep queue: the simulated clock outruns 1-CPU CI boxes, and
        # this comparison needs a drop-free run, not backpressure.
        process = session("process", n_workers=2, queue_depth=8192)
        assert process.runtime_stats.slots_dropped == 0, \
            "determinism comparison needs a drop-free run"
        assert inline.telemetry.records == process.telemetry.records
        assert inline.counters == process.counters
        assert inline.tracked_rntis == process.tracked_rntis
        assert inline.uci.observations == process.uci.observations
