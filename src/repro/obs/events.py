"""The observability event schema (version 1).

Every event the bus emits is one flat JSON object — one line of a
``JsonlReporter`` file — carrying a fixed envelope plus free-form
scalar fields:

========== ========= ====================================================
field      type      meaning
========== ========= ====================================================
``v``      int       schema version (this module's ``SCHEMA_VERSION``)
``seq``    int       monotonic per-context sequence number (commit order)
``run_id`` str       session identity shared by every event of a run
``kind``   str       ``event`` | ``span`` | ``counter``
``name``   str       dotted lowercase event name (``stage.span``, ...)
========== ========= ====================================================

Well-known optional fields (typed when present):

* ``cell`` (str) — cell label, bound once per scope;
* ``slot`` (int) — slot index the event describes;
* ``rnti`` (int) — UE identity, for failure clustering;
* ``stage`` (str) — slot-runtime stage name;
* ``reason`` (str) — failure cause (``bler``, ``backpressure``, ...);
* ``outcome`` (str) — span outcome (``ok`` | ``backpressure`` | ``halt``);
* ``duration_us`` (number) — span duration in microseconds;
* ``value`` (number) — counter increment.

Unknown extra fields are allowed (forward compatibility) but must be
JSON scalars — events are flat by design so they stay greppable and
columnar-friendly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Mapping

#: Version stamped into every event's ``v`` field.
SCHEMA_VERSION = 1

#: The three event kinds the bus knows.
EVENT_KINDS = ("event", "span", "counter")

#: Envelope fields every event must carry, with their required types.
REQUIRED_FIELDS: dict[str, type] = {
    "v": int,
    "seq": int,
    "run_id": str,
    "kind": str,
    "name": str,
}

#: Well-known optional fields and their allowed types.
OPTIONAL_FIELDS: dict[str, tuple[type, ...]] = {
    "cell": (str,),
    "slot": (int,),
    "rnti": (int,),
    "stage": (str,),
    "reason": (str,),
    "outcome": (str,),
    "duration_us": (int, float),
    "value": (int, float),
    "level": (int,),
    "executor": (str,),
    "fidelity": (str,),
}

#: JSON scalar types permitted for unknown extra fields.
_SCALAR_TYPES = (str, int, float, bool, type(None))


@dataclass(frozen=True)
class EventSpec:
    """The declared contract of one event name.

    ``required`` lists fields every emission must carry (beyond the
    envelope); ``fields`` declares event-specific extras with their
    allowed types, beyond the well-known :data:`OPTIONAL_FIELDS`.
    Counters implicitly carry ``value`` and spans ``duration_us`` —
    the bus adds those, so specs do not repeat them.
    """

    name: str
    kind: str
    required: tuple[str, ...] = ()
    fields: dict[str, tuple[type, ...]] = field(default_factory=dict)


#: Every event name the system emits, with its declared contract.
#: ``obs validate`` (and lint rule R012, statically) reject emissions
#: that are not in this table — a typo'd name no longer passes
#: silently.  New events are *declared here first*, then emitted.
KNOWN_EVENTS: dict[str, EventSpec] = {spec.name: spec for spec in (
    EventSpec("session.start", "event",
              required=("fidelity", "executor"),
              fields={"seed": (int,)}),
    EventSpec("session.end", "event",
              fields={"slots": (int,), "dcis_decoded": (int,),
                      "dcis_dropped": (int,), "msg4_missed": (int,)}),
    EventSpec("sync.acquired", "event", required=("slot",)),
    EventSpec("stage.span", "span", required=("stage", "outcome")),
    EventSpec("stage.drop", "counter", required=("stage", "reason")),
    EventSpec("dci.miss", "event",
              required=("slot", "rnti", "stage", "reason")),
    EventSpec("dci.drop", "event",
              required=("slot", "rnti", "stage", "reason")),
    EventSpec("dci.decoded", "counter", required=("slot",)),
    EventSpec("msg4.miss", "event",
              required=("slot", "rnti", "stage", "reason")),
    EventSpec("msg4.tracked", "event",
              required=("slot", "rnti", "stage")),
    EventSpec("nrsan.violation", "event",
              required=("stage", "reason")),
    EventSpec("fleet.checkpoint", "span", required=("cells",),
              fields={"cells": (int,), "bytes": (int,)}),
    EventSpec("fleet.restore", "span", required=("cells",),
              fields={"cells": (int,), "bytes": (int,)}),
)}


def _check_registry(event: Mapping[str, Any],
                    registry: Mapping[str, EventSpec]) -> list[str]:
    """Registry conformance of one envelope-valid event."""
    problems: list[str] = []
    spec = registry.get(event["name"])
    if spec is None:
        problems.append(f"unknown event name {event['name']!r} "
                        f"(not declared in KNOWN_EVENTS)")
        return problems
    if event["kind"] != spec.kind:
        problems.append(
            f"event {spec.name!r} must have kind {spec.kind!r}, "
            f"got {event['kind']!r}")
    for name in spec.required:
        if name not in event:
            problems.append(
                f"event {spec.name!r} missing required field {name!r}")
    for name, allowed in spec.fields.items():
        if name in event and (not isinstance(event[name], allowed)
                              or isinstance(event[name], bool)):
            names = "/".join(t.__name__ for t in allowed)
            problems.append(
                f"field {name!r} of {spec.name!r} must be {names}, "
                f"got {type(event[name]).__name__}")
    return problems


def validate_event(event: Mapping[str, Any],
                   registry: Mapping[str, EventSpec] | None = None) \
        -> list[str]:
    """Check one event against the schema; returns problem strings.

    An empty list means the event is valid.  The check is tolerant of
    unknown fields (they only need to be JSON scalars) so a newer
    writer's stream still validates under an older reader.  With a
    ``registry`` (normally :data:`KNOWN_EVENTS`), the event's name
    must additionally be declared and its kind/required fields must
    match the declaration.
    """
    problems: list[str] = []
    for field, expected in REQUIRED_FIELDS.items():
        if field not in event:
            problems.append(f"missing required field {field!r}")
        elif not isinstance(event[field], expected) \
                or isinstance(event[field], bool):
            problems.append(
                f"field {field!r} must be {expected.__name__}, "
                f"got {type(event[field]).__name__}")
    if not problems:
        if event["v"] != SCHEMA_VERSION:
            problems.append(
                f"unsupported schema version {event['v']!r} "
                f"(expected {SCHEMA_VERSION})")
        if event["kind"] not in EVENT_KINDS:
            problems.append(f"unknown kind {event['kind']!r}")
        if event["seq"] < 0:
            problems.append(f"negative seq {event['seq']!r}")
        if not event["name"]:
            problems.append("empty event name")
        elif registry is not None:
            problems.extend(_check_registry(event, registry))
    for field, value in event.items():
        if field in REQUIRED_FIELDS:
            continue
        allowed = OPTIONAL_FIELDS.get(field)
        if allowed is not None:
            if not isinstance(value, allowed) or isinstance(value, bool):
                names = "/".join(t.__name__ for t in allowed)
                problems.append(
                    f"field {field!r} must be {names}, "
                    f"got {type(value).__name__}")
        elif not isinstance(value, _SCALAR_TYPES):
            problems.append(
                f"extra field {field!r} must be a JSON scalar, "
                f"got {type(value).__name__}")
    return problems


def validate_events(events: Iterable[Mapping[str, Any]],
                    registry: Mapping[str, EventSpec] | None = None) \
        -> list[tuple[int, str]]:
    """Validate a whole stream; returns ``(index, problem)`` pairs.

    Also enforces the cross-event contract: ``seq`` strictly increases
    (the bus assigns sequence numbers in commit order) and ``run_id``
    is constant within one stream.  ``registry`` is forwarded to
    :func:`validate_event` for per-name conformance.
    """
    problems: list[tuple[int, str]] = []
    last_seq = -1
    run_id: str | None = None
    for index, event in enumerate(events):
        for problem in validate_event(event, registry):
            problems.append((index, problem))
        seq = event.get("seq")
        if isinstance(seq, int) and not isinstance(seq, bool):
            if seq <= last_seq:
                problems.append(
                    (index, f"seq {seq} not after previous {last_seq}"))
            last_seq = seq
        this_run = event.get("run_id")
        if isinstance(this_run, str):
            if run_id is None:
                run_id = this_run
            elif this_run != run_id:
                problems.append(
                    (index,
                     f"run_id {this_run!r} differs from {run_id!r}"))
    return problems
