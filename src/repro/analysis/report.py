"""Text rendering of the paper's tables and figure series.

Every experiment module produces structured rows; this module turns them
into the aligned text tables the benchmark harness prints, so a run's
output can be eyeballed against the paper figure it reproduces.
"""

from __future__ import annotations

from dataclasses import dataclass


class ReportError(ValueError):
    """Raised for inconsistent table shapes."""


@dataclass(frozen=True)
class Table:
    """A titled table with typed columns."""

    title: str
    columns: tuple[str, ...]
    rows: tuple[tuple, ...]

    def render(self) -> str:
        """Fixed-width text rendering."""
        cells = [[_fmt(v) for v in row] for row in self.rows]
        widths = [len(c) for c in self.columns]
        for row in cells:
            if len(row) != len(self.columns):
                raise ReportError(
                    f"row width {len(row)} != header {len(self.columns)}")
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        lines = [self.title,
                 "  ".join(c.ljust(widths[i])
                           for i, c in enumerate(self.columns)),
                 "  ".join("-" * w for w in widths)]
        for row in cells:
            lines.append("  ".join(cell.ljust(widths[i])
                                   for i, cell in enumerate(row)))
        return "\n".join(lines)


def _fmt(value) -> str:
    if isinstance(value, float):
        if value != 0 and abs(value) < 0.01:
            return f"{value:.2e}"
        return f"{value:.3f}".rstrip("0").rstrip(".")
    return str(value)


def series_table(title: str, series: list[tuple[float, float]],
                 x_label: str, y_label: str,
                 max_rows: int = 20) -> Table:
    """A down-sampled (x, y) table for CCDF/CDF/time series."""
    if not series:
        raise ReportError(f"empty series for {title!r}")
    step = max(1, len(series) // max_rows)
    sampled = series[::step]
    if sampled[-1] != series[-1]:
        sampled.append(series[-1])
    return Table(title=title, columns=(x_label, y_label),
                 rows=tuple((x, y) for x, y in sampled))


def print_tables(tables: list[Table]) -> str:
    """Render and join many tables; returns (and prints) the text."""
    text = "\n\n".join(t.render() for t in tables)
    print(text)
    return text
