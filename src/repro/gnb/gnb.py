"""The simulated 5G SA gNodeB (DESIGN.md substitution for the testbeds).

Per slot the gNB: broadcasts MIB/SIB1 on schedule, advances the RACH FSM
and emits MSG 4s, runs the MAC scheduler over the connected UEs, resolves
HARQ state into final DCIs and grants, applies each UE's instantaneous
channel to decide transport-block success, and logs *everything* it
transmitted into :class:`GnbLog` — the same role srsRAN's log plays as
ground truth in the paper's evaluation (section 5.2.1).

Two fidelity modes:

* ``message`` - DCIs travel as structured records; a sniffer models its
  decode success with the calibrated PDCCH BLER.  Fast enough for
  minutes-long sessions with 64 UEs.
* ``iq`` - every PDCCH is polar-encoded into a slot resource grid, which
  the sniffer's virtual USRP captures with noise and actually decodes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.constants import SI_RNTI
from repro.phy.dci import Dci, DciFormat, riv_encode
from repro.phy.grant import Grant, dci_to_grant
from repro.phy.numerology import SlotClock
from repro.phy.pdcch import PdcchCandidate, PdcchError, encode_pdcch
from repro.phy.resource_grid import GridError, ResourceGrid
from repro.phy.tbs import transport_block_size
from repro.phy.uci import UciReport
from repro.gnb.cell_config import CellProfile
from repro.gnb.harq import HarqEntity
from repro.gnb.rach import Msg4Event, RachProcedure
from repro.gnb.scheduler import AllocationPlan, BaseScheduler, \
    ProportionalFairScheduler, RoundRobinScheduler, \
    UeSchedulingContext, build_dci
from repro.rrc.messages import Mib, RrcSetup, Sib1
from repro.ue.channel import transport_block_survives
from repro.ue.ue import UserEquipment


class GnbError(ValueError):
    """Raised for invalid gNB operations."""


@dataclass(frozen=True)
class DciRecord:
    """Ground truth for one transmitted DCI (one srsRAN log line)."""

    slot_index: int
    time_s: float
    rnti: int
    dci: Dci
    grant: Grant
    candidate: PdcchCandidate
    search_space: str            # "common" or "ue"
    is_retransmission: bool
    delivered: bool              # did the target UE decode the data?
    payload_bytes: int
    n_packets: int


@dataclass(frozen=True)
class Msg4Record:
    """Ground truth for one RACH completion (MSG 4)."""

    slot_index: int
    time_s: float
    ue_id: int
    tc_rnti: int
    rrc_setup: RrcSetup


class GnbLog:
    """The gNB-side log used as evaluation ground truth."""

    def __init__(self) -> None:
        self.dci_records: list[DciRecord] = []
        self.msg4_records: list[Msg4Record] = []
        self.uci_records: list["UciRecord"] = []

    def add_dci(self, record: DciRecord) -> None:
        self.dci_records.append(record)

    def add_msg4(self, record: Msg4Record) -> None:
        self.msg4_records.append(record)

    def records_for_rnti(self, rnti: int) -> list[DciRecord]:
        """All DCIs addressed to one RNTI."""
        return [r for r in self.dci_records if r.rnti == rnti]

    def downlink_records(self) -> list[DciRecord]:
        """DL scheduling DCIs (format 1_1, excluding broadcast)."""
        return [r for r in self.dci_records
                if r.dci.format is DciFormat.DL_1_1 and r.rnti != SI_RNTI]

    def uplink_records(self) -> list[DciRecord]:
        """UL scheduling DCIs (format 0_1)."""
        return [r for r in self.dci_records
                if r.dci.format is DciFormat.UL_0_1]


@dataclass(frozen=True)
class UciRecord:
    """Ground truth for one PUCCH UCI transmission (paper section 7's
    future-work channel, implemented here)."""

    slot_index: int
    time_s: float
    rnti: int
    report: UciReport


@dataclass
class SlotOutput:
    """Everything on the air in one slot (downlink and uplink)."""

    slot: SlotClock
    is_downlink: bool
    dci_records: list[DciRecord] = field(default_factory=list)
    msg4_records: list[Msg4Record] = field(default_factory=list)
    uci_records: list[UciRecord] = field(default_factory=list)
    mib: Mib | None = None
    sib1: Sib1 | None = None
    grid: ResourceGrid | None = None
    #: Time-domain SSB burst (PSS|SSS|PBCH) in iq fidelity, rendered
    #: whenever the MIB is broadcast; a waveform-bootstrapping sniffer
    #: correlates and polar-decodes this instead of reading ``mib``.
    ssb_samples: object | None = None


@dataclass
class _HarqStash:
    """Payload retained by the gNB for potential retransmission."""

    payload_bytes: int
    n_packets: int
    n_prb: int
    downlink: bool


class GNodeB:
    """The cell: scheduler, RACH, HARQ, broadcast, ground-truth log."""

    def __init__(self, profile: CellProfile, scheduler: str = "rr",
                 seed: int = 0, fidelity: str = "message",
                 max_ues_per_slot: int = 8,
                 olla_target_bler: float | None = None) -> None:
        if fidelity not in ("message", "iq"):
            raise GnbError(f"unknown fidelity mode: {fidelity!r}")
        self.profile = profile
        self.fidelity = fidelity
        self._rng = np.random.default_rng(seed)
        # Grid rendering must not share the BLER draw stream, or iq and
        # message fidelity would schedule differently from the same seed.
        self._grid_rng = np.random.default_rng(seed ^ 0x5EED)
        self.log = GnbLog()
        self.rach = RachProcedure()

        self._ues: dict[int, UserEquipment] = {}
        self._by_rnti: dict[int, UserEquipment] = {}
        # DL and UL HARQ are independent protocol entities (38.321); a
        # shared entity would interleave NDI toggles across directions
        # and break the sniffer's per-direction tracking.
        self._harq: dict[tuple[int, bool], HarqEntity] = {}
        self._stash: dict[tuple[int, int, bool], _HarqStash] = {}
        self._pending_retx: dict[int, list[tuple[int, bool]]] = {}
        self._retx_sizes: dict[int, dict[tuple[int, bool],
                                         tuple[int, int, int]]] = {}
        self._ewma: dict[int, float] = {}
        self._rrc_setup_cache: dict[int, RrcSetup] = {}
        # CQI as *reported* over PUCCH (used by link adaptation) and the
        # latest DL decode outcome (fed back as HARQ-ACK in UCI).
        self._reported_cqi: dict[int, int] = {}
        self._last_dl_ack: dict[int, int] = {}
        self.uci_period_slots = 8
        # Outer-loop link adaptation: when a target BLER is set, per-UE
        # dB offsets nudge the CQI-derived MCS so the realised first-
        # transmission error rate converges on the target.
        self.olla_target_bler = olla_target_bler
        self._olla_offset: dict[int, float] = {}
        # Uplink demand as the gNB actually learns it: scheduling
        # requests open a small probe grant, and buffer status reports
        # piggy-backed on PUSCH keep the estimate current.  The gNB
        # never reads UE buffers directly.
        self._known_ul_backlog: dict[int, int] = {}
        self.sr_probe_bytes = 128

        grant_config = profile.grant_config()
        search_space = profile.ue_search_space()
        scheduler_classes = {"rr": RoundRobinScheduler,
                             "pf": ProportionalFairScheduler}
        if scheduler not in scheduler_classes:
            raise GnbError(f"unknown scheduler policy: {scheduler!r}")
        self.scheduler: BaseScheduler = scheduler_classes[scheduler](
            grant_config, search_space, max_ues_per_slot=max_ues_per_slot)
        self._dci_cfg = profile.dci_size_config()
        self._common_space = profile.common_search_space()

    # ------------------------------------------------------------ UEs
    def add_ue(self, ue: UserEquipment, slot_index: int = 0) -> None:
        """Admit a UE; it starts the RACH process immediately."""
        if ue.ue_id in self._ues:
            raise GnbError(f"duplicate UE id {ue.ue_id}")
        self._ues[ue.ue_id] = ue
        self.rach.request_connection(ue.ue_id, slot_index)

    def remove_ue(self, ue_id: int, time_s: float | None = None) -> None:
        """Release a UE (RRC release / departure)."""
        ue = self._ues.pop(ue_id, None)
        if ue is None:
            return
        if ue.rnti is not None:
            self._by_rnti.pop(ue.rnti, None)
        if time_s is not None:
            ue.departure_time_s = time_s
        ue.disconnect()
        self._harq.pop((ue_id, True), None)
        self._harq.pop((ue_id, False), None)
        self._pending_retx.pop(ue_id, None)
        self._retx_sizes.pop(ue_id, None)
        self._ewma.pop(ue_id, None)
        self._reported_cqi.pop(ue_id, None)
        self._last_dl_ack.pop(ue_id, None)
        self._olla_offset.pop(ue_id, None)
        self._known_ul_backlog.pop(ue_id, None)
        self._stash = {k: v for k, v in self._stash.items()
                       if k[0] != ue_id}

    @property
    def connected_ues(self) -> list[UserEquipment]:
        """UEs holding a C-RNTI."""
        return [ue for ue in self._ues.values() if ue.is_connected]

    @property
    def ues(self) -> dict[int, UserEquipment]:
        """All admitted UEs by id (connected or in RACH)."""
        return dict(self._ues)

    def ue_by_rnti(self, rnti: int) -> UserEquipment | None:
        """Look up a connected UE by its C-RNTI."""
        return self._by_rnti.get(rnti)

    # ------------------------------------------------------ broadcast
    def _broadcast(self, slot: SlotClock, output: SlotOutput) -> None:
        """MIB on its period; SIB1 with an SI-RNTI DCI on its period."""
        if slot.slot != 0:
            return
        if slot.sfn % self.profile.mib_period_frames == 0:
            output.mib = self.profile.build_mib(slot.sfn)
            if self.fidelity == "iq":
                from repro.core.acquisition import render_cell_broadcast
                output.ssb_samples = render_cell_broadcast(
                    self.profile.cell_id, output.mib, pad_before=32,
                    pad_after=32)
        if slot.sfn % self.profile.sib1_period_frames == 0:
            output.sib1 = self.profile.build_sib1()
            self._emit_sib1_dci(slot, output)

    def _emit_sib1_dci(self, slot: SlotClock, output: SlotOutput) -> None:
        """The CORESET-0 DCI scheduling SIB1's PDSCH."""
        n_prb = min(8, self.profile.n_prb)
        first_prb = self.profile.n_prb - n_prb
        dci = Dci(format=DciFormat.DL_1_1, rnti=SI_RNTI,
                  freq_alloc_riv=riv_encode(first_prb, n_prb,
                                            self.profile.n_prb),
                  time_alloc=3, mcs=2, ndi=0, rv=0, harq_id=0, dai=0,
                  tpc=1)
        grant = dci_to_grant(dci, self.profile.grant_config())
        starts = self._common_space.candidate_cces(4, slot.index)
        candidate = PdcchCandidate(first_cce=starts[0] if starts else 0,
                                   aggregation_level=4)
        record = DciRecord(
            slot_index=slot.index, time_s=slot.time_s, rnti=SI_RNTI,
            dci=dci, grant=grant, candidate=candidate,
            search_space="common", is_retransmission=False, delivered=True,
            payload_bytes=grant.tbs_bytes, n_packets=1)
        self.log.add_dci(record)
        output.dci_records.append(record)

    # ------------------------------------------------------------ RACH
    def _handle_msg4(self, events: list[Msg4Event], slot: SlotClock,
                     output: SlotOutput, used_common_cces: set[int]) -> None:
        for event in events:
            ue = self._ues.get(event.ue_id)
            if ue is None:
                continue
            ue.connect(event.tc_rnti)
            self._by_rnti[event.tc_rnti] = ue
            self._harq[(ue.ue_id, True)] = HarqEntity()
            self._harq[(ue.ue_id, False)] = HarqEntity()
            self._pending_retx[ue.ue_id] = []
            self._retx_sizes[ue.ue_id] = {}
            self._ewma[ue.ue_id] = 1.0

            rrc_setup = self._rrc_setup_for(event.tc_rnti)
            record = Msg4Record(slot_index=slot.index, time_s=slot.time_s,
                                ue_id=ue.ue_id, tc_rnti=event.tc_rnti,
                                rrc_setup=rrc_setup)
            self.log.add_msg4(record)
            output.msg4_records.append(record)
            self._emit_msg4_dci(event, slot, output, used_common_cces)

    def _rrc_setup_for(self, tc_rnti: int) -> RrcSetup:
        """The RRC Setup body; identical across UEs apart from the RNTI
        (the redundancy the paper's section 3.1.2 optimisation exploits)."""
        if tc_rnti not in self._rrc_setup_cache:
            self._rrc_setup_cache[tc_rnti] = RrcSetup(
                tc_rnti=tc_rnti,
                search_space=self.profile.search_space_config(),
                dci_format_dl="1_1",
                mcs_table=self.profile.mcs_table,
                max_mimo_layers=self.profile.max_mimo_layers,
                bwp_id=self.profile.bwp_id)
        return self._rrc_setup_cache[tc_rnti]

    def _emit_msg4_dci(self, event: Msg4Event, slot: SlotClock,
                       output: SlotOutput,
                       used_common_cces: set[int]) -> None:
        """MSG 4's PDCCH transmission in the common search space."""
        n_prb = min(4, self.profile.n_prb)
        dci = Dci(format=DciFormat.DL_1_1, rnti=event.tc_rnti,
                  freq_alloc_riv=riv_encode(0, n_prb, self.profile.n_prb),
                  time_alloc=3, mcs=4, ndi=0, rv=0, harq_id=0, dai=0,
                  tpc=1)
        grant = dci_to_grant(dci, self.profile.grant_config())
        candidate = None
        for start in self._common_space.candidate_cces(4, slot.index):
            cces = set(range(start, start + 4))
            if not cces & used_common_cces:
                used_common_cces |= cces
                candidate = PdcchCandidate(first_cce=start,
                                           aggregation_level=4)
                break
        if candidate is None:
            candidate = PdcchCandidate(first_cce=0, aggregation_level=4)
        record = DciRecord(
            slot_index=slot.index, time_s=slot.time_s, rnti=event.tc_rnti,
            dci=dci, grant=grant, candidate=candidate,
            search_space="common", is_retransmission=False, delivered=True,
            payload_bytes=grant.tbs_bytes, n_packets=1)
        self.log.add_dci(record)
        output.dci_records.append(record)

    # ------------------------------------------------------- data path
    def _contexts(self) -> list[UeSchedulingContext]:
        contexts = []
        for ue in self.connected_ues:
            assert ue.rnti is not None
            contexts.append(UeSchedulingContext(
                ue_id=ue.ue_id, rnti=ue.rnti,
                dl_backlog_bytes=ue.dl_buffer.backlog_bytes,
                ul_backlog_bytes=self._known_ul_backlog.get(ue.ue_id, 0),
                cqi=self._reported_cqi.get(ue.ue_id, ue.current_cqi),
                olla_offset_db=self._olla_offset.get(ue.ue_id, 0.0),
                pending_retx=list(self._pending_retx.get(ue.ue_id, [])),
                retx_prb_sizes=dict(self._retx_sizes.get(ue.ue_id, {})),
                ewma_throughput_bps=self._ewma.get(ue.ue_id, 1.0)))
        return contexts

    def _tbs_for_plan(self, plan: AllocationPlan) -> int:
        config = self.scheduler.grant_config
        return transport_block_size(
            plan.n_prb, plan.n_symbols, plan.mcs,
            n_layers=config.n_layers,
            n_dmrs_per_prb=config.n_dmrs_per_prb,
            n_oh_per_prb=config.xoverhead_res).tbs_bits

    def _resolve_plan(self, plan: AllocationPlan, slot: SlotClock,
                      used_processes: dict[tuple[int, bool], set[int]]) \
            -> DciRecord | None:
        """Turn an allocation plan into a transmitted DCI + data result.

        ``used_processes`` tracks HARQ ids already carrying a block this
        TTI per (UE, direction); real HARQ feedback takes several slots,
        so a freed process must not be reused within the same slot.
        """
        ue = self._ues.get(plan.ue_id)
        harq = self._harq.get((plan.ue_id, plan.downlink))
        if ue is None or harq is None or ue.rnti is None:
            return None
        used = used_processes.setdefault((plan.ue_id, plan.downlink),
                                         set())

        tbs_bits = self._tbs_for_plan(plan)
        if plan.is_retransmission and plan.retx_harq_id is not None:
            harq_id = plan.retx_harq_id
            pending = self._pending_retx.get(plan.ue_id, [])
            if (harq_id, plan.downlink) not in pending:
                return None
            pending.remove((harq_id, plan.downlink))
            _, ndi, rv = harq.transmit_retx(harq_id)
            stash = self._stash.get((plan.ue_id, harq_id, plan.downlink))
            payload_bytes = stash.payload_bytes if stash else 0
            n_packets = stash.n_packets if stash else 0
        else:
            result = harq.transmit_new(tbs_bits, exclude=used)
            if result is None:
                return None  # all HARQ processes busy this slot
            harq_id, ndi, rv = result
            if plan.downlink:
                payload_bytes, n_packets = ue.dl_buffer.drain(tbs_bits // 8)
            else:
                payload_bytes, n_packets = ue.ul_buffer.drain(tbs_bits // 8)
                # The PUSCH carries a buffer status report: the gNB's
                # demand estimate snaps to the UE's remaining backlog.
                self._known_ul_backlog[plan.ue_id] = \
                    ue.ul_buffer.backlog_bytes
            self._stash[(plan.ue_id, harq_id, plan.downlink)] = _HarqStash(
                payload_bytes=payload_bytes, n_packets=n_packets,
                n_prb=plan.n_prb, downlink=plan.downlink)
            self._retx_sizes.setdefault(plan.ue_id, {})[
                (harq_id, plan.downlink)] = (plan.n_prb, plan.time_alloc,
                                             plan.n_symbols)
        used.add(harq_id)

        dci = build_dci(plan, self.profile.n_prb, ndi=ndi, rv=rv,
                        harq_id=harq_id)
        grant = dci_to_grant(dci, self.scheduler.grant_config)

        # Did the UE decode it? Instantaneous SNR vs the chosen MCS.
        # Retransmissions benefit from HARQ soft combining: chase
        # combining of n copies adds ~10 log10(n) dB of effective SNR,
        # which is what makes post-retransmission drops genuinely rare
        # on real systems.
        effective_snr = ue.current_snr_db
        if plan.is_retransmission:
            harq_entity = self._harq[(plan.ue_id, plan.downlink)]
            n_copies = 1 + harq_entity.processes[harq_id].retx_count
            effective_snr += 10.0 * np.log10(max(n_copies, 1))
        survives = transport_block_survives(effective_snr, plan.mcs,
                                            self._rng)
        if survives:
            harq.handle_feedback(harq_id, ack=True)
            stash = self._stash.pop((plan.ue_id, harq_id, plan.downlink),
                                    None)
            delivered_bytes = stash.payload_bytes if stash else payload_bytes
            delivered_packets = stash.n_packets if stash else n_packets
            if plan.downlink:
                ue.deliver_downlink(slot.time_s, delivered_bytes,
                                    delivered_packets)
            else:
                ue.deliver_uplink(slot.time_s, delivered_bytes,
                                  delivered_packets)
            payload_bytes = delivered_bytes
            n_packets = delivered_packets
        else:
            action = harq.handle_feedback(harq_id, ack=False)
            if action == "retransmit":
                self._pending_retx.setdefault(plan.ue_id, []) \
                    .append((harq_id, plan.downlink))
            else:  # dropped after max retransmissions
                self._stash.pop((plan.ue_id, harq_id, plan.downlink), None)

        if plan.downlink:
            self._last_dl_ack[plan.ue_id] = 1 if survives else 0
        if self.olla_target_bler is not None \
                and not plan.is_retransmission:
            target = self.olla_target_bler
            step_up = 0.02
            offset = self._olla_offset.get(plan.ue_id, 0.0)
            if survives:
                offset += step_up * target / (1.0 - target)
            else:
                offset -= step_up
            self._olla_offset[plan.ue_id] = max(-12.0, min(3.0, offset))

        # EWMA throughput for the PF policy.
        delivered_bits = payload_bytes * 8 if survives else 0
        old = self._ewma.get(plan.ue_id, 1.0)
        self._ewma[plan.ue_id] = 0.99 * old + 0.01 * delivered_bits \
            / self.profile.slot_duration_s

        return DciRecord(
            slot_index=slot.index, time_s=slot.time_s, rnti=ue.rnti,
            dci=dci, grant=grant, candidate=plan.candidate,
            search_space="ue", is_retransmission=plan.is_retransmission,
            delivered=survives, payload_bytes=payload_bytes,
            n_packets=n_packets)

    # ----------------------------------------------------------- grid
    def _render_grid(self, output: SlotOutput) -> None:
        """IQ mode: polar-encode every PDCCH and occupy PDSCH regions."""
        grid = ResourceGrid(self.profile.n_prb)
        coreset0 = self.profile.coreset0()
        dedicated = self.profile.dedicated_coreset()
        for record in output.dci_records:
            coreset = coreset0 if record.search_space == "common" \
                else dedicated
            try:
                encode_pdcch(record.dci, self._dci_cfg, coreset,
                             record.candidate, grid,
                             n_id=self.profile.cell_id,
                             slot_index=output.slot.index)
            except PdcchError:
                # A candidate occasionally exceeds CORESET 0's CCE count
                # on narrow carriers; skip rendering (the record stays in
                # the log, counted as a sniffer miss).
                continue
            grant = record.grant
            if grant.downlink and grant.n_prb > 0:
                n_res = grant.n_re
                payload = self._grid_rng.integers(0, 2, 2 * n_res)
                symbols = (1 - 2.0 * payload[0::2]) \
                    + 1j * (1 - 2.0 * payload[1::2])
                symbols /= np.sqrt(2.0)
                try:
                    grid.fill_block(grant.first_prb, grant.n_prb,
                                    grant.first_symbol, grant.n_symbols,
                                    symbols[:grant.n_prb * 12
                                            * grant.n_symbols],
                                    ResourceGrid.PDSCH)
                except GridError:
                    continue
        output.grid = grid

    # ----------------------------------------------------------- step
    def step(self, slot: SlotClock) -> SlotOutput:
        """Advance the cell one TTI and return what went on the air."""
        output = SlotOutput(slot=slot,
                            is_downlink=self.profile.is_downlink_slot(
                                slot.index))

        for ue in self._ues.values():
            ue.advance_slot(slot.index)

        if output.is_downlink:
            used_common: set[int] = set()
            self._broadcast(slot, output)
            self._handle_msg4(self.rach.step(slot.index), slot, output,
                              used_common)

            plans = self.scheduler.schedule(slot.index, self._contexts())
            used_processes: dict[tuple[int, bool], set[int]] = {}
            for plan in plans:
                record = self._resolve_plan(plan, slot, used_processes)
                if record is not None:
                    self.log.add_dci(record)
                    output.dci_records.append(record)

        if self.profile.is_uplink_slot(slot.index):
            self._collect_uci(slot, output)

        if self.fidelity == "iq":
            self._render_grid(output)
        return output

    def _collect_uci(self, slot: SlotClock, output: SlotOutput) -> None:
        """Connected UEs transmit periodic UCI on PUCCH (uplink slots):
        a CQI report, a scheduling request when data waits without a
        grant, and the last HARQ-ACK verdict."""
        for ue in self.connected_ues:
            assert ue.rnti is not None
            if (slot.index + ue.ue_id) % self.uci_period_slots:
                continue
            ack = self._last_dl_ack.pop(ue.ue_id, None)
            wants_grant = ue.ul_buffer.backlog_bytes > 0 \
                and self._known_ul_backlog.get(ue.ue_id, 0) == 0
            report = UciReport(
                rnti=ue.rnti, slot_index=slot.index,
                harq_ack=(ack,) if ack is not None else (),
                scheduling_request=wants_grant,
                cqi=ue.current_cqi)
            self._reported_cqi[ue.ue_id] = ue.current_cqi
            if wants_grant:
                self._known_ul_backlog[ue.ue_id] = max(
                    self._known_ul_backlog.get(ue.ue_id, 0),
                    self.sr_probe_bytes)
            record = UciRecord(slot_index=slot.index,
                               time_s=slot.time_s, rnti=ue.rnti,
                               report=report)
            self.log.uci_records.append(record)
            output.uci_records.append(record)
