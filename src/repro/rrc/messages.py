"""The RRC message set NR-Scope decodes (TS 38.331, abridged).

Three messages drive the telemetry pipeline (paper section 3.1):

* :class:`Mib` - broadcast every 80 ms on the PBCH; yields the system
  frame number and where CORESET 0 lives.
* :class:`Sib1` - scheduled by a SI-RNTI DCI in CORESET 0; yields the
  cell's common configuration including everything needed to follow the
  RACH process.
* :class:`RrcSetup` - MSG 4 of the RACH process; yields the UE-dedicated
  configuration (search space, DCI format, MCS table, MIMO layers) that
  makes per-UE DCI decoding possible.

Every message knows how to serialise itself with the deterministic bit
codec; ``decode_message`` dispatches on the leading type tag.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.rrc.codec import BitReader, BitWriter, CodecError

#: Message type tags (6 bits on the wire).
_TAG_MIB = 0x01
_TAG_SIB1 = 0x02
_TAG_RRC_SETUP = 0x03
_TAG_RRC_RELEASE = 0x04

#: SCS encodings used in the messages.
_SCS_CODES = {15: 0, 30: 1, 60: 2}
_SCS_FROM_CODE = {v: k for k, v in _SCS_CODES.items()}


@dataclass(frozen=True)
class Mib:
    """Master Information Block: the entry point of cell search."""

    sfn: int
    scs_common_khz: int
    ssb_subcarrier_offset: int
    dmrs_typea_position: int    # 2 or 3
    coreset0_index: int         # pdcch-ConfigSIB1 high nibble
    search_space0_index: int    # pdcch-ConfigSIB1 low nibble
    cell_barred: bool = False
    intra_freq_reselection: bool = True

    def encode(self) -> np.ndarray:
        """Serialise to bits (tag + fields)."""
        writer = BitWriter().write(_TAG_MIB, 6)
        writer.write(self.sfn, 10)
        writer.write(_SCS_CODES[self.scs_common_khz], 2)
        writer.write(self.ssb_subcarrier_offset, 4)
        writer.write(self.dmrs_typea_position - 2, 1)
        writer.write(self.coreset0_index, 4)
        writer.write(self.search_space0_index, 4)
        writer.write_bool(self.cell_barred)
        writer.write_bool(self.intra_freq_reselection)
        return writer.to_bits()

    @classmethod
    def decode_fields(cls, reader: BitReader) -> "Mib":
        """Parse the fields after the tag."""
        return cls(
            sfn=reader.read(10),
            scs_common_khz=_SCS_FROM_CODE[reader.read(2)],
            ssb_subcarrier_offset=reader.read(4),
            dmrs_typea_position=reader.read(1) + 2,
            coreset0_index=reader.read(4),
            search_space0_index=reader.read(4),
            cell_barred=reader.read_bool(),
            intra_freq_reselection=reader.read_bool(),
        )


@dataclass(frozen=True)
class RachConfig:
    """The slice of SIB1 that schedules the RACH process (38.331
    RACH-ConfigCommon): where MSG 1 goes and how MSG 2-4 are found."""

    prach_config_index: int = 98
    msg1_frequency_start: int = 0
    preamble_received_target_power_dbm: int = -110
    ra_response_window_slots: int = 20
    msg1_scs_khz: int = 30

    def encode_into(self, writer: BitWriter) -> None:
        writer.write(self.prach_config_index, 8)
        writer.write(self.msg1_frequency_start, 9)
        writer.write_signed(self.preamble_received_target_power_dbm, 9)
        writer.write(self.ra_response_window_slots, 6)
        writer.write(_SCS_CODES[self.msg1_scs_khz], 2)

    @classmethod
    def decode_from(cls, reader: BitReader) -> "RachConfig":
        return cls(
            prach_config_index=reader.read(8),
            msg1_frequency_start=reader.read(9),
            preamble_received_target_power_dbm=reader.read_signed(9),
            ra_response_window_slots=reader.read(6),
            msg1_scs_khz=_SCS_FROM_CODE[reader.read(2)],
        )


@dataclass(frozen=True)
class TddConfig:
    """TDD-UL-DL-ConfigCommon: the slot pattern within one period.

    The paper's lab cells all run TDD with 30 kHz SCS; a common pattern is
    5 ms periodicity = 10 slots: 7 downlink, 2 uplink, 1 flexible.
    """

    period_slots: int = 10
    n_dl_slots: int = 7
    n_ul_slots: int = 2

    def __post_init__(self) -> None:
        if self.n_dl_slots + self.n_ul_slots > self.period_slots:
            raise CodecError("TDD pattern exceeds its period")

    def encode_into(self, writer: BitWriter) -> None:
        writer.write(self.period_slots, 6)
        writer.write(self.n_dl_slots, 6)
        writer.write(self.n_ul_slots, 6)

    @classmethod
    def decode_from(cls, reader: BitReader) -> "TddConfig":
        return cls(period_slots=reader.read(6), n_dl_slots=reader.read(6),
                   n_ul_slots=reader.read(6))

    def is_downlink(self, slot_in_period: int) -> bool:
        """True when the slot carries downlink (flexible counts as DL)."""
        return slot_in_period % self.period_slots < self.n_dl_slots

    def is_uplink(self, slot_in_period: int) -> bool:
        """True when the slot is uplink-only."""
        pos = slot_in_period % self.period_slots
        return pos >= self.period_slots - self.n_ul_slots


@dataclass(frozen=True)
class Sib1:
    """System Information Block 1: the cell's common configuration."""

    cell_identity: int
    n_prb_carrier: int
    scs_khz: int
    is_tdd: bool
    rach: RachConfig = field(default_factory=RachConfig)
    tdd: TddConfig = field(default_factory=TddConfig)
    initial_bwp_id: int = 0
    pdcch_coreset_prbs: int = 48
    pdcch_coreset_symbols: int = 1
    si_window_slots: int = 10

    def encode(self) -> np.ndarray:
        writer = BitWriter().write(_TAG_SIB1, 6)
        writer.write(self.cell_identity, 36)
        writer.write(self.n_prb_carrier, 9)
        writer.write(_SCS_CODES[self.scs_khz], 2)
        writer.write_bool(self.is_tdd)
        self.rach.encode_into(writer)
        self.tdd.encode_into(writer)
        writer.write(self.initial_bwp_id, 2)
        writer.write(self.pdcch_coreset_prbs, 9)
        writer.write(self.pdcch_coreset_symbols, 2)
        writer.write(self.si_window_slots, 6)
        return writer.to_bits()

    @classmethod
    def decode_fields(cls, reader: BitReader) -> "Sib1":
        return cls(
            cell_identity=reader.read(36),
            n_prb_carrier=reader.read(9),
            scs_khz=_SCS_FROM_CODE[reader.read(2)],
            is_tdd=reader.read_bool(),
            rach=RachConfig.decode_from(reader),
            tdd=TddConfig.decode_from(reader),
            initial_bwp_id=reader.read(2),
            pdcch_coreset_prbs=reader.read(9),
            pdcch_coreset_symbols=reader.read(2),
            si_window_slots=reader.read(6),
        )


@dataclass(frozen=True)
class SearchSpaceConfig:
    """Dedicated search-space parameters carried in MSG 4."""

    coreset_id: int = 1
    coreset_first_prb: int = 0
    coreset_n_prb: int = 48
    coreset_n_symbols: int = 1
    coreset_first_symbol: int = 1
    interleaved: bool = True
    n_candidates_al1: int = 0
    n_candidates_al2: int = 2
    n_candidates_al4: int = 2
    n_candidates_al8: int = 1

    def candidates_per_level(self) -> dict[int, int]:
        """The {aggregation level: candidate count} map."""
        return {1: self.n_candidates_al1, 2: self.n_candidates_al2,
                4: self.n_candidates_al4, 8: self.n_candidates_al8}

    def encode_into(self, writer: BitWriter) -> None:
        writer.write(self.coreset_id, 4)
        writer.write(self.coreset_first_prb, 9)
        writer.write(self.coreset_n_prb, 9)
        writer.write(self.coreset_n_symbols, 2)
        writer.write(self.coreset_first_symbol, 2)
        writer.write_bool(self.interleaved)
        for count in (self.n_candidates_al1, self.n_candidates_al2,
                      self.n_candidates_al4, self.n_candidates_al8):
            writer.write(count, 3)

    @classmethod
    def decode_from(cls, reader: BitReader) -> "SearchSpaceConfig":
        return cls(
            coreset_id=reader.read(4),
            coreset_first_prb=reader.read(9),
            coreset_n_prb=reader.read(9),
            coreset_n_symbols=reader.read(2),
            coreset_first_symbol=reader.read(2),
            interleaved=reader.read_bool(),
            n_candidates_al1=reader.read(3),
            n_candidates_al2=reader.read(3),
            n_candidates_al4=reader.read(3),
            n_candidates_al8=reader.read(3),
        )


@dataclass(frozen=True)
class RrcSetup:
    """MSG 4: the UE-dedicated configuration (paper section 3.1.2).

    This is the message whose DCI reveals the C-RNTI and whose body tells
    NR-Scope how to find the UE's future DCIs: search space, DCI format,
    MCS table, MIMO layers, DMRS overhead, BWP.
    """

    tc_rnti: int
    search_space: SearchSpaceConfig = field(
        default_factory=SearchSpaceConfig)
    dci_format_dl: str = "1_1"
    mcs_table: str = "qam64"
    max_mimo_layers: int = 1
    dmrs_add_position: int = 0
    xoverhead: int = 0
    bwp_id: int = 0

    def encode(self) -> np.ndarray:
        writer = BitWriter().write(_TAG_RRC_SETUP, 6)
        writer.write(self.tc_rnti, 16)
        self.search_space.encode_into(writer)
        writer.write_bool(self.dci_format_dl == "1_1")
        writer.write_bool(self.mcs_table == "qam256")
        writer.write(self.max_mimo_layers - 1, 2)
        writer.write(self.dmrs_add_position, 2)
        writer.write(self.xoverhead, 2)
        writer.write(self.bwp_id, 2)
        return writer.to_bits()

    @classmethod
    def decode_fields(cls, reader: BitReader) -> "RrcSetup":
        return cls(
            tc_rnti=reader.read(16),
            search_space=SearchSpaceConfig.decode_from(reader),
            dci_format_dl="1_1" if reader.read_bool() else "1_0",
            mcs_table="qam256" if reader.read_bool() else "qam64",
            max_mimo_layers=reader.read(2) + 1,
            dmrs_add_position=reader.read(2),
            xoverhead=reader.read(2),
            bwp_id=reader.read(2),
        )

    @property
    def n_dmrs_res_per_prb(self) -> int:
        """DMRS REs per PRB implied by the additional-position count.

        One front-loaded DMRS symbol contributes 12 REs/PRB (type 1, both
        CDM groups); each additional position adds another 12.
        """
        return 12 * (1 + self.dmrs_add_position)

    @property
    def xoverhead_res(self) -> int:
        """The xOverhead enum mapped to REs per PRB (0/6/12/18)."""
        return self.xoverhead * 6


@dataclass(frozen=True)
class RrcRelease:
    """Connection release; ends a UE's time in the RAN."""

    rnti: int

    def encode(self) -> np.ndarray:
        return BitWriter().write(_TAG_RRC_RELEASE, 6).write(self.rnti, 16) \
            .to_bits()

    @classmethod
    def decode_fields(cls, reader: BitReader) -> "RrcRelease":
        return cls(rnti=reader.read(16))


_DECODERS = {
    _TAG_MIB: Mib.decode_fields,
    _TAG_SIB1: Sib1.decode_fields,
    _TAG_RRC_SETUP: RrcSetup.decode_fields,
    _TAG_RRC_RELEASE: RrcRelease.decode_fields,
}

RrcMessage = Mib | Sib1 | RrcSetup | RrcRelease


def decode_message(bits: np.ndarray | bytes) -> RrcMessage:
    """Decode any RRC message by its leading type tag."""
    reader = BitReader(bits)
    tag = reader.read(6)
    if tag not in _DECODERS:
        raise CodecError(f"unknown RRC message tag: {tag}")
    return _DECODERS[tag](reader)
