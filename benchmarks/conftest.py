"""Benchmark harness configuration.

Every benchmark regenerates one figure of the paper: it runs the
experiment once under pytest-benchmark's timer, prints the figure's
series/summary as text tables, and asserts the paper's qualitative shape
(who wins, by roughly what factor).  Durations are scaled down from the
paper's 10-minute sessions — see EXPERIMENTS.md for the mapping.
"""

import pytest


@pytest.fixture
def once(benchmark):
    """Run a heavy experiment exactly once under the benchmark timer."""

    def runner(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                                  rounds=1, iterations=1)

    return runner
