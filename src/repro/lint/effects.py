"""Transitive effect inference over the project call graph.

Every function in the scanned tree is classified against the effect
lattice the staged :class:`~repro.core.runtime.SlotRuntime` cares
about:

* ``mutates-tracked`` — writes the tracked-UE table or a tracked UE
  (``RachSniffer.discover/miss/release/prune_idle``,
  ``TrackedUe.touch``, or any store through a ``tracked`` attribute);
* ``rng`` — stateful randomness: draws on a ``*rng*`` Generator,
  ``default_rng`` creation, legacy ``np.random.*`` global state,
  stdlib ``random``;
* ``counter-rng`` — the sanctioned exception: counter-keyed draws
  through :func:`repro.core.decode_model.counter_uniform`, pure given
  their key fields and therefore legal in the parallel stage;
* ``io`` — file/socket/process side effects;
* ``clock`` — wall-clock reads.

A function with none of these is *pure* for the runtime's purposes.
Direct (seed) effects are detected per function body; the transitive
closure then flows caller-ward over the call graph, carrying a witness
chain so a violation can be reported as ``_stage_dci -> decode_slot ->
self._rng.random() (core/dci_decoder.py:103)`` rather than as a bare
verdict.  Opaque (unresolvable) calls contribute no effects — the
count of them is surfaced in the report so the blind spot is measured,
not hidden.

:class:`Program` bundles the call graph, the effect table and the
detected parallel-stage roots; the engine builds one per scan for the
rules that declare ``needs_program`` and for ``repro.lint effects``.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.lint.callgraph import (
    CallGraph,
    FunctionNode,
    dotted_name,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.lint.wire import WireAnalysis

# Effect names (stable strings: they appear in the JSON report).
MUTATES_TRACKED = "mutates-tracked"
RNG = "rng"
COUNTER_RNG = "counter-rng"
IO = "io"
CLOCK = "clock"

ALL_EFFECTS = (MUTATES_TRACKED, RNG, COUNTER_RNG, IO, CLOCK)

#: Effects a parallel (pure) stage may not have.  ``counter-rng`` is
#: the deliberate exception: keyed draws are order- and thread-free.
FORBIDDEN_IN_PARALLEL = (MUTATES_TRACKED, RNG, IO, CLOCK)

#: Draw methods of numpy Generator objects (stateful: each call
#: advances the stream).
RNG_DRAW_METHODS = frozenset({
    "random", "normal", "integers", "uniform", "choice", "shuffle",
    "permutation", "standard_normal", "exponential", "poisson",
    "binomial", "bytes", "gamma", "beta", "geometric", "triangular",
    "lognormal", "pareto", "rayleigh",
})

#: Legacy numpy global-RNG entry points (mirrors R005's table).
LEGACY_NP_RANDOM = frozenset({
    "rand", "randn", "randint", "random", "random_sample", "choice",
    "shuffle", "permutation", "seed", "normal", "uniform", "poisson",
    "exponential", "standard_normal", "binomial",
})

#: Wall-clock call suffixes (dotted-name tails).
WALL_CLOCK_CALLS = frozenset({
    "time.time", "time.time_ns", "time.monotonic", "time.monotonic_ns",
    "time.perf_counter", "time.perf_counter_ns",
    "datetime.now", "datetime.utcnow", "datetime.today",
})

#: I/O seeds: builtins, dotted prefixes, and method leaf names.
IO_BUILTINS = frozenset({"open", "input", "print"})
IO_PREFIXES = ("os.remove", "os.rename", "os.mkdir", "os.makedirs",
               "os.unlink", "subprocess.", "socket.", "shutil.")
IO_METHODS = frozenset({"write_text", "read_text", "write_bytes",
                        "read_bytes"})

#: Known tracked-table mutators, by (class name, method name).  The
#: class-name match keeps this working on fixture trees that mirror
#: the layout without importing the real classes.
TRACKED_MUTATOR_METHODS = frozenset({
    ("RachSniffer", "discover"), ("RachSniffer", "miss"),
    ("RachSniffer", "release"), ("RachSniffer", "prune_idle"),
    ("TrackedUe", "touch"),
})

#: Mutating mapping methods, for ``<x>.tracked.pop(...)`` style seeds.
MAPPING_MUTATORS = frozenset({"pop", "popitem", "clear", "update",
                              "setdefault"})

#: The sanctioned counter-keyed draw.  Treated as a boundary: its body
#: is not descended into, its callers inherit exactly ``counter-rng``.
COUNTER_RNG_FUNCTIONS = frozenset({"counter_uniform"})


@dataclass(frozen=True)
class Seed:
    """One direct effect occurrence inside a function body."""

    effect: str
    detail: str     #: human-readable description of the site
    rel: str
    lineno: int


def _receiver_has_rng(name: str) -> bool:
    """Whether a dotted receiver path names an RNG (``self._rng`` ...)."""
    return any("rng" in part.lower() for part in name.split("."))


def _tracked_store_target(node: ast.expr) -> str | None:
    """Dotted path of a store target that goes through ``tracked``."""
    base: ast.expr = node
    while isinstance(base, (ast.Subscript, ast.Attribute)):
        if isinstance(base, ast.Attribute) and base.attr == "tracked":
            name = dotted_name(base)
            return name if name is not None else "<expr>.tracked"
        base = base.value
    if isinstance(base, ast.Name) and base.id == "tracked":
        return "tracked"
    return None


def collect_seeds(function: FunctionNode) -> list[Seed]:
    """Direct effects visible in one function's body."""
    if function.name in COUNTER_RNG_FUNCTIONS:
        return [Seed(COUNTER_RNG, "counter-keyed uniform draw",
                     function.rel, function.node.lineno)]
    if (function.cls, function.name) in TRACKED_MUTATOR_METHODS:
        return [Seed(MUTATES_TRACKED,
                     f"{function.cls}.{function.name} mutates the "
                     f"tracked-UE table", function.rel,
                     function.node.lineno)]
    seeds: list[Seed] = []
    for node in ast.walk(function.node):
        if isinstance(node, (ast.Assign, ast.AugAssign, ast.Delete)):
            targets = node.targets if isinstance(
                node, (ast.Assign, ast.Delete)) else [node.target]
            for target in targets:
                path = _tracked_store_target(target)
                # A write *into* the table (subscript / attribute of
                # ``tracked``) mutates it; rebinding a plain local
                # called ``tracked`` does not.
                if path is not None and not isinstance(target, ast.Name):
                    seeds.append(Seed(
                        MUTATES_TRACKED, f"store through '{path}'",
                        function.rel, node.lineno))
        elif isinstance(node, ast.Call):
            seeds.extend(_call_seeds(function, node))
        elif isinstance(node, ast.ImportFrom) and node.module == "random":
            seeds.append(Seed(RNG, "stdlib 'random' import",
                              function.rel, node.lineno))
    return seeds


def _call_seeds(function: FunctionNode, node: ast.Call) -> list[Seed]:
    seeds: list[Seed] = []
    name = dotted_name(node.func)
    leaf = name.split(".")[-1] if name is not None else (
        node.func.attr if isinstance(node.func, ast.Attribute) else "")
    rel, lineno = function.rel, node.lineno

    # RNG: generator creation, legacy global state, stdlib random,
    # draws on an rng-named receiver or a chained fresh generator.
    if leaf == "default_rng":
        seeds.append(Seed(RNG, f"'{name or leaf}()' creates a Generator",
                          rel, lineno))
        return seeds
    if name is not None:
        parts = name.split(".")
        if parts[0] == "random" and len(parts) > 1:
            seeds.append(Seed(RNG, f"stdlib '{name}()'", rel, lineno))
            return seeds
        if len(parts) >= 3 and parts[-2] == "random" \
                and parts[-1] in LEGACY_NP_RANDOM:
            seeds.append(Seed(RNG, f"legacy '{name}()' global RNG state",
                              rel, lineno))
            return seeds
        suffix = ".".join(parts[-2:]) if len(parts) >= 2 else name
        if suffix in WALL_CLOCK_CALLS:
            seeds.append(Seed(CLOCK, f"'{name}()' reads the wall clock",
                              rel, lineno))
            return seeds
        if name in IO_BUILTINS or \
                any(name.startswith(p) for p in IO_PREFIXES):
            seeds.append(Seed(IO, f"'{name}()' performs I/O",
                              rel, lineno))
            return seeds
    if isinstance(node.func, ast.Attribute):
        attr = node.func.attr
        receiver = dotted_name(node.func.value)
        if attr in RNG_DRAW_METHODS:
            if receiver is not None and _receiver_has_rng(receiver):
                seeds.append(Seed(
                    RNG, f"'{receiver}.{attr}()' stateful draw",
                    rel, lineno))
                return seeds
            inner = node.func.value
            if isinstance(inner, ast.Call):
                inner_name = dotted_name(inner.func)
                if inner_name is not None and \
                        inner_name.split(".")[-1] == "default_rng":
                    seeds.append(Seed(
                        RNG, f"draw on a fresh '{inner_name}()'",
                        rel, lineno))
                    return seeds
        if attr in IO_METHODS:
            seeds.append(Seed(
                IO, f"'.{attr}()' file access", rel, lineno))
            return seeds
        if attr in MAPPING_MUTATORS and receiver is not None and \
                receiver.split(".")[-1] == "tracked":
            seeds.append(Seed(
                MUTATES_TRACKED, f"'{receiver}.{attr}()' mutates the "
                f"tracked table", rel, lineno))
    return seeds


@dataclass
class EffectTable:
    """Per-function effect sets with provenance."""

    #: qualname -> direct seeds found in that body
    seeds: dict[str, list[Seed]] = field(default_factory=dict)
    #: qualname -> transitive effect set
    effects: dict[str, set[str]] = field(default_factory=dict)
    #: (qualname, effect) -> callee qualname it came through
    #: (absent/None when the effect is direct)
    via: dict[tuple[str, str], str | None] = field(default_factory=dict)

    def effects_of(self, qualname: str) -> set[str]:
        """Transitive effects of one function (empty set = pure)."""
        return self.effects.get(qualname, set())

    def witness_chain(self, qualname: str, effect: str) -> list[str]:
        """Call chain from ``qualname`` down to the seeding function."""
        chain = [qualname]
        seen = {qualname}
        current: str | None = qualname
        while current is not None:
            current = self.via.get((current, effect))
            if current is None or current in seen:
                break
            chain.append(current)
            seen.add(current)
        return chain

    def seed_for(self, qualname: str, effect: str) -> Seed | None:
        """The direct seed at the end of a witness chain."""
        leaf = self.witness_chain(qualname, effect)[-1]
        for seed in self.seeds.get(leaf, []):
            if seed.effect == effect:
                return seed
        return None

    def describe(self, qualname: str, effect: str) -> str:
        """Human-readable ``a -> b -> seed (file:line)`` witness."""
        chain = self.witness_chain(qualname, effect)
        names = [qn.split("::", 1)[-1] for qn in chain]
        seed = self.seed_for(qualname, effect)
        text = " -> ".join(names)
        if seed is not None:
            text += f": {seed.detail} ({seed.rel}:{seed.lineno})"
        return text


def infer_effects(graph: CallGraph) -> EffectTable:
    """Seed every function, then propagate effects caller-ward to a
    fixed point (cycles converge: effect sets only grow)."""
    table = EffectTable()
    callers: dict[str, list[str]] = {}
    for qualname, edges in graph.edges.items():
        for edge in edges:
            callers.setdefault(edge.callee, []).append(edge.caller)
    worklist: list[str] = []
    for qualname, function in graph.functions.items():
        seeds = collect_seeds(function)
        table.seeds[qualname] = seeds
        table.effects[qualname] = {seed.effect for seed in seeds}
        if table.effects[qualname]:
            worklist.append(qualname)
    boundary = {qn for qn, fn in graph.functions.items()
                if fn.name in COUNTER_RNG_FUNCTIONS}
    while worklist:
        callee = worklist.pop()
        callee_effects = table.effects[callee]
        for caller in callers.get(callee, []):
            if caller in boundary:
                continue
            caller_effects = table.effects.setdefault(caller, set())
            added = False
            for effect in callee_effects:
                if effect not in caller_effects:
                    caller_effects.add(effect)
                    table.via[(caller, effect)] = callee
                    added = True
            if added:
                worklist.append(caller)
    return table


# ------------------------------------------------------------- program
@dataclass(frozen=True)
class StageRoot:
    """A detected parallel-stage entry point."""

    qualname: str
    rel: str
    lineno: int
    how: str        #: "decorator" | "stage-call"


def _find_stage_roots(graph: CallGraph) -> list[StageRoot]:
    roots: dict[str, StageRoot] = {}
    for qualname, function in graph.functions.items():
        if any(dec.split(".")[-1] == "parallel_stage"
               for dec in function.decorators):
            roots.setdefault(qualname, StageRoot(
                qualname=qualname, rel=function.rel,
                lineno=function.node.lineno, how="decorator"))
    for module in graph.modules.values():
        contexts: list[tuple[str | None, ast.AST]] = [(None, module.tree)]
        contexts += [(k.name, k.node) for k in module.classes.values()]
        for klass_name, tree in contexts:
            for node in ast.walk(tree):
                if not isinstance(node, ast.Call):
                    continue
                name = dotted_name(node.func)
                if name is None or name.split(".")[-1] != "Stage":
                    continue
                if not any(kw.arg == "parallel"
                           and isinstance(kw.value, ast.Constant)
                           and kw.value.value is True
                           for kw in node.keywords):
                    continue
                fn_expr: ast.expr | None = None
                if len(node.args) >= 2:
                    fn_expr = node.args[1]
                else:
                    for kw in node.keywords:
                        if kw.arg == "fn":
                            fn_expr = kw.value
                if fn_expr is None:
                    continue
                target = graph.resolve_callable_expr(
                    module.rel, fn_expr, cls=klass_name)
                if target is not None:
                    roots.setdefault(target.qualname, StageRoot(
                        qualname=target.qualname, rel=target.rel,
                        lineno=node.lineno, how="stage-call"))
    return sorted(roots.values(), key=lambda r: (r.rel, r.qualname))


class Program:
    """Whole-scan analysis context handed to flow-aware rules."""

    def __init__(self, modules: list[tuple[str, str, ast.Module]]) -> None:
        self.graph = CallGraph.build(modules)
        self.effects = infer_effects(self.graph)
        self.stage_roots = _find_stage_roots(self.graph)
        self._reachable: dict[str, set[str]] | None = None
        self._wire: "WireAnalysis | None" = None

    @property
    def wire(self) -> "WireAnalysis":
        """Wire-payload escape analysis (built lazily: only R009 and
        the contracts report need it)."""
        from repro.lint.wire import WireAnalysis
        if self._wire is None:
            self._wire = WireAnalysis(self.graph)
        return self._wire

    # ---------------------------------------------------- reachability
    def reachable_from(self, qualname: str) -> set[str]:
        """Transitive callee closure of one function (inclusive)."""
        seen = {qualname}
        stack = [qualname]
        while stack:
            current = stack.pop()
            for edge in self.graph.callees(current):
                if edge.callee not in seen:
                    seen.add(edge.callee)
                    stack.append(edge.callee)
        return seen

    def parallel_reachable(self) -> set[str]:
        """Every function reachable from any parallel-stage root."""
        reachable: set[str] = set()
        for root in self.stage_roots:
            reachable |= self.reachable_from(root.qualname)
        return reachable

    # --------------------------------------------------------- report
    def effect_report(self) -> dict[str, object]:
        """The ``repro.lint effects`` JSON payload."""
        effectful = {
            qn: sorted(effects)
            for qn, effects in sorted(self.effects.effects.items())
            if effects}
        frontier: list[dict[str, object]] = []
        for root in self.stage_roots:
            reachable = sorted(self.reachable_from(root.qualname))
            violations = []
            root_effects = self.effects.effects_of(root.qualname)
            for effect in FORBIDDEN_IN_PARALLEL:
                if effect in root_effects:
                    violations.append({
                        "effect": effect,
                        "witness": self.effects.witness_chain(
                            root.qualname, effect),
                        "detail": self.effects.describe(
                            root.qualname, effect),
                    })
            frontier.append({
                "root": root.qualname,
                "detected_by": root.how,
                "reachable": reachable,
                "effects": sorted(root_effects),
                "pure": not violations,
                "violations": violations,
            })
        return {
            "modules": len(self.graph.modules),
            "functions": len(self.graph.functions),
            "call_edges": sum(len(e) for e in self.graph.edges.values()),
            "opaque_calls": self.graph.n_opaque,
            "effects": effectful,
            "stage_roots": [r.qualname for r in self.stage_roots],
            "purity_frontier": frontier,
        }
