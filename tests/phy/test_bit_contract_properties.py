"""Property tests for the pack/unpack bit contracts (runtime twin of
lint rule R002).

The static rule proves the pack and unpack *code paths* agree; these
tests prove the *values* agree: for randomized ``DciSizeConfig``
layouts and arbitrary payload bit patterns, ``pack(unpack(bits)) ==
bits`` exactly, for both DCI formats, for PBCH payloads through the
full coded chain, and for every RRC message through the fixed-width
codec.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.phy.dci import (
    Dci,
    DciFormat,
    DciSizeConfig,
    dci_payload_size,
    field_layout,
    pack,
    unpack,
)
from repro.phy.pbch import decode_pbch, encode_pbch
from repro.rrc.messages import (
    Mib,
    RachConfig,
    RrcSetup,
    SearchSpaceConfig,
    Sib1,
    TddConfig,
    decode_message,
)

# Randomised RRC-derived DCI layouts: every field width the gNB could
# plausibly configure, including zero-width (absent) optional fields.
size_configs = st.builds(
    DciSizeConfig,
    n_prb_bwp=st.integers(1, 275),
    bwp_indicator_bits=st.integers(0, 2),
    antenna_ports_bits=st.integers(0, 6),
    dai_bits=st.integers(0, 4),
    pucch_resource_bits=st.integers(0, 4),
    harq_feedback_bits=st.integers(0, 4),
    srs_request_bits=st.integers(0, 3),
)

formats = st.sampled_from(list(DciFormat))


class TestDciBitContract:
    @given(cfg=size_configs, fmt=formats, data=st.data())
    @settings(max_examples=60, deadline=None)
    def test_pack_unpack_pack_is_identity(self, cfg, fmt, data):
        """pack(unpack(bits)) == bits for arbitrary payload patterns."""
        size = dci_payload_size(fmt, cfg)
        bits = np.array(
            data.draw(st.lists(st.integers(0, 1), min_size=size,
                               max_size=size)),
            dtype=np.uint8)
        # The format-identifier bit must be consistent or unpack
        # (rightly) rejects the payload.
        bits[0] = 1 if fmt is DciFormat.DL_1_1 else 0
        dci = unpack(bits, fmt, cfg, rnti=0x4601)
        assert np.array_equal(pack(dci, cfg), bits)

    @given(cfg=size_configs, fmt=formats, data=st.data())
    @settings(max_examples=60, deadline=None)
    def test_unpack_pack_unpack_is_identity(self, cfg, fmt, data):
        """unpack(pack(dci)) == dci for in-range field values."""
        values = {}
        for name, width in field_layout(fmt, cfg):
            if name == "_identifier":
                continue
            values[name] = data.draw(
                st.integers(0, (1 << width) - 1), label=name)
        dci = Dci(format=fmt, rnti=0x4601, **values)
        assert unpack(pack(dci, cfg), fmt, cfg, rnti=0x4601) == dci

    @given(cfg=size_configs)
    @settings(max_examples=60, deadline=None)
    def test_payload_size_matches_layout(self, cfg):
        for fmt in DciFormat:
            layout = field_layout(fmt, cfg)
            assert dci_payload_size(fmt, cfg) == \
                sum(width for _, width in layout)
            assert all(width > 0 for _, width in layout)


class TestPbchBitContract:
    @given(data=st.data())
    @settings(max_examples=10, deadline=None)
    def test_payload_roundtrip_through_coded_chain(self, data):
        """Any MIB-sized payload survives encode -> decode bit-exactly
        at negligible noise."""
        length = data.draw(st.integers(1, 64))
        payload = np.array(
            data.draw(st.lists(st.integers(0, 1), min_size=length,
                               max_size=length)),
            dtype=np.uint8)
        cell_id = data.draw(st.integers(0, 1007))
        symbols = encode_pbch(payload, cell_id)
        decoded = decode_pbch(symbols, length, cell_id, noise_var=1e-6)
        assert decoded is not None
        assert np.array_equal(decoded, payload)


scs_values = st.sampled_from([15, 30, 60])

mibs = st.builds(
    Mib,
    sfn=st.integers(0, 1023),
    scs_common_khz=scs_values,
    ssb_subcarrier_offset=st.integers(0, 15),
    dmrs_typea_position=st.integers(2, 3),
    coreset0_index=st.integers(0, 15),
    search_space0_index=st.integers(0, 15),
    cell_barred=st.booleans(),
    intra_freq_reselection=st.booleans(),
)

rach_configs = st.builds(
    RachConfig,
    prach_config_index=st.integers(0, 255),
    msg1_frequency_start=st.integers(0, 511),
    preamble_received_target_power_dbm=st.integers(-256, 255),
    ra_response_window_slots=st.integers(0, 63),
    msg1_scs_khz=scs_values,
)

tdd_configs = st.integers(0, 63).flatmap(
    lambda period: st.tuples(
        st.integers(0, period), st.integers(0, period)).map(
        lambda dl_ul: TddConfig(
            period_slots=period,
            n_dl_slots=min(dl_ul[0], period),
            n_ul_slots=max(0, min(dl_ul[1], period - dl_ul[0])))))

sib1s = st.builds(
    Sib1,
    cell_identity=st.integers(0, (1 << 36) - 1),
    n_prb_carrier=st.integers(0, 511),
    scs_khz=scs_values,
    is_tdd=st.booleans(),
    rach=rach_configs,
    tdd=tdd_configs,
    initial_bwp_id=st.integers(0, 3),
    pdcch_coreset_prbs=st.integers(0, 511),
    pdcch_coreset_symbols=st.integers(0, 3),
    si_window_slots=st.integers(0, 63),
)

search_spaces = st.builds(
    SearchSpaceConfig,
    coreset_id=st.integers(0, 15),
    coreset_first_prb=st.integers(0, 511),
    coreset_n_prb=st.integers(0, 511),
    coreset_n_symbols=st.integers(0, 3),
    coreset_first_symbol=st.integers(0, 3),
    interleaved=st.booleans(),
    n_candidates_al1=st.integers(0, 7),
    n_candidates_al2=st.integers(0, 7),
    n_candidates_al4=st.integers(0, 7),
    n_candidates_al8=st.integers(0, 7),
)

rrc_setups = st.builds(
    RrcSetup,
    tc_rnti=st.integers(0, 0xFFFF),
    search_space=search_spaces,
    dci_format_dl=st.sampled_from(["1_1", "1_0"]),
    mcs_table=st.sampled_from(["qam64", "qam256"]),
    max_mimo_layers=st.integers(1, 4),
    dmrs_add_position=st.integers(0, 3),
    xoverhead=st.integers(0, 3),
    bwp_id=st.integers(0, 3),
)


class TestRrcBitContract:
    @given(message=st.one_of(mibs, sib1s, rrc_setups))
    @settings(max_examples=100, deadline=None)
    def test_message_roundtrip(self, message):
        assert decode_message(message.encode()) == message

    @given(message=st.one_of(mibs, sib1s, rrc_setups))
    @settings(max_examples=50, deadline=None)
    def test_byte_padded_roundtrip_is_stable(self, message):
        """Re-encoding the decoded message yields identical bits."""
        bits = message.encode()
        again = decode_message(bits).encode()
        assert np.array_equal(bits, again)
