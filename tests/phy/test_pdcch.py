"""Tests for repro.phy.pdcch: the full DCI encode/decode chain."""

import numpy as np
import pytest

from repro.phy.coreset import Coreset
from repro.phy.dci import Dci, DciFormat, DciSizeConfig, riv_encode
from repro.phy.pdcch import (
    BITS_PER_CCE,
    PdcchCandidate,
    PdcchError,
    dci_crc_attach,
    dci_crc_check,
    dci_recover_rnti,
    decode_candidate_bits,
    encode_pdcch,
    try_decode_pdcch,
)
from repro.phy.resource_grid import ResourceGrid

CFG = DciSizeConfig(n_prb_bwp=51)
N_ID = 500


def make_dci(rnti=0x4296, **overrides):
    base = dict(format=DciFormat.DL_1_1, rnti=rnti,
                freq_alloc_riv=riv_encode(0, 3, 51), time_alloc=2, mcs=27,
                ndi=0, rv=0, harq_id=11, dai=2, tpc=1,
                harq_feedback_timing=2, antenna_ports=7)
    base.update(overrides)
    return Dci(**base)


def coreset():
    return Coreset(coreset_id=1, first_prb=0, n_prb=48, n_symbols=1)


def encode_one(grid, dci, cand, slot_index=0):
    return encode_pdcch(dci, CFG, coreset(), cand, grid, N_ID, slot_index)


class TestCrcChain:
    def test_attach_check_roundtrip(self, rng):
        payload = rng.integers(0, 2, 46).astype(np.uint8)
        block = dci_crc_attach(payload, 0x4296)
        assert dci_crc_check(block, 0x4296)
        assert not dci_crc_check(block, 0x4297)

    def test_recover_rnti(self, rng):
        payload = rng.integers(0, 2, 46).astype(np.uint8)
        block = dci_crc_attach(payload, 0xABCD)
        assert dci_recover_rnti(block) == 0xABCD

    def test_recover_rejects_corruption(self, rng):
        payload = rng.integers(0, 2, 46).astype(np.uint8)
        block = dci_crc_attach(payload, 0xABCD)
        block[3] ^= 1
        assert dci_recover_rnti(block) is None

    def test_ones_prefix_matters(self, rng):
        # The 24 prepended ones mean the CRC differs from a plain CRC24C.
        from repro.phy.crc import crc_attach
        payload = rng.integers(0, 2, 46).astype(np.uint8)
        with_prefix = dci_crc_attach(payload, 0)
        plain = crc_attach(payload, "crc24c")
        assert not np.array_equal(with_prefix, plain)

    def test_short_block(self):
        assert not dci_crc_check(np.zeros(10, dtype=np.uint8), 1)
        assert dci_recover_rnti(np.zeros(10, dtype=np.uint8)) is None


class TestEncode:
    def test_grid_occupancy(self):
        grid = ResourceGrid(n_prb=51)
        cand = PdcchCandidate(first_cce=0, aggregation_level=2)
        encode_one(grid, make_dci(), cand)
        # 2 CCEs = 12 REGs, each fully occupied (9 data + 3 DMRS REs).
        assert grid.count_regs() == 12
        pdcch_res = (grid.occupancy == ResourceGrid.PDCCH).sum()
        dmrs_res = (grid.occupancy == ResourceGrid.DMRS).sum()
        assert pdcch_res == 2 * 6 * 9
        assert dmrs_res == 2 * 6 * 3

    def test_candidate_must_fit(self):
        grid = ResourceGrid(n_prb=51)
        cand = PdcchCandidate(first_cce=6, aggregation_level=4)
        with pytest.raises(PdcchError):
            encode_one(grid, make_dci(), cand)

    def test_bits_per_cce(self):
        assert BITS_PER_CCE == 108
        assert PdcchCandidate(0, 4).n_coded_bits == 432


class TestDecode:
    def test_clean_roundtrip_all_levels(self):
        for level in (1, 2, 4, 8):
            grid = ResourceGrid(n_prb=51)
            cand = PdcchCandidate(first_cce=0, aggregation_level=level)
            dci = make_dci()
            encode_one(grid, dci, cand)
            out = try_decode_pdcch(grid, CFG, coreset(), cand,
                                   DciFormat.DL_1_1, 0x4296, N_ID, 1e-4)
            assert out == dci, f"level {level}"

    def test_wrong_rnti_rejected(self):
        grid = ResourceGrid(n_prb=51)
        cand = PdcchCandidate(0, 2)
        encode_one(grid, make_dci(rnti=0x1000), cand)
        out = try_decode_pdcch(grid, CFG, coreset(), cand,
                               DciFormat.DL_1_1, 0x2000, N_ID, 1e-4)
        assert out is None

    def test_wrong_candidate_rejected(self):
        grid = ResourceGrid(n_prb=51)
        encode_one(grid, make_dci(), PdcchCandidate(0, 2))
        out = try_decode_pdcch(grid, CFG, coreset(), PdcchCandidate(4, 2),
                               DciFormat.DL_1_1, 0x4296, N_ID, 1e-4)
        assert out is None

    def test_empty_grid_never_false_positives(self, rng):
        # Pure noise must not produce CRC-valid DCIs (paper's key claim:
        # decodes are verifiable). 24-bit CRC makes chance ~6e-8.
        coreset_ = coreset()
        for trial in range(20):
            grid = ResourceGrid(n_prb=51).clone_with_noise(0.0, rng)
            out = try_decode_pdcch(grid, CFG, coreset_, PdcchCandidate(0, 2),
                                   DciFormat.DL_1_1, 0x4296, N_ID, 1.0)
            assert out is None

    def test_decode_under_mild_noise(self, rng):
        hits = 0
        for trial in range(10):
            grid = ResourceGrid(n_prb=51)
            cand = PdcchCandidate(0, 2)
            dci = make_dci()
            encode_one(grid, dci, cand, slot_index=trial)
            noisy = grid.clone_with_noise(10.0, rng)
            out = try_decode_pdcch(noisy, CFG, coreset(), cand,
                                   DciFormat.DL_1_1, 0x4296, N_ID, 0.1)
            hits += out == dci
        assert hits == 10

    def test_miss_rate_grows_as_snr_drops(self, rng):
        def misses(snr_db):
            count = 0
            noise_var = 10 ** (-snr_db / 10)
            for trial in range(15):
                grid = ResourceGrid(n_prb=51)
                cand = PdcchCandidate(0, 1)
                dci = make_dci()
                encode_one(grid, dci, cand, slot_index=trial)
                noisy = grid.clone_with_noise(snr_db, rng)
                out = try_decode_pdcch(noisy, CFG, coreset(), cand,
                                       DciFormat.DL_1_1, 0x4296, N_ID,
                                       noise_var)
                count += out != dci
            return count

        assert misses(-5.0) > misses(15.0)

    def test_aggregation_protects_at_low_snr(self, rng):
        """Higher aggregation level = lower code rate = more robust."""
        def hit_rate(level, snr_db=-2.0):
            hits = 0
            noise_var = 10 ** (-snr_db / 10)
            for trial in range(15):
                grid = ResourceGrid(n_prb=51)
                cand = PdcchCandidate(0, level)
                dci = make_dci()
                encode_one(grid, dci, cand, slot_index=trial)
                noisy = grid.clone_with_noise(snr_db, rng)
                out = try_decode_pdcch(noisy, CFG, coreset(), cand,
                                       DciFormat.DL_1_1, 0x4296, N_ID,
                                       noise_var)
                hits += out == dci
            return hits

        assert hit_rate(8) >= hit_rate(1)


class TestBlindDecode:
    def test_rnti_recovery_from_candidate(self):
        grid = ResourceGrid(n_prb=51)
        cand = PdcchCandidate(0, 4)
        dci = make_dci(rnti=0x7777)
        payload = encode_one(grid, dci, cand)
        bits = decode_candidate_bits(grid, coreset(), cand, payload.size,
                                     N_ID, 1e-4)
        assert dci_recover_rnti(bits) == 0x7777

    def test_oversized_payload_returns_none(self):
        grid = ResourceGrid(n_prb=51)
        bits = decode_candidate_bits(grid, coreset(), PdcchCandidate(0, 1),
                                     200, N_ID, 1e-4)
        assert bits is None
