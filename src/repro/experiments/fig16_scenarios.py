"""Fig 16: per-scenario throughput error CCDFs and packet aggregation.

(Paper Appendix C and D.)  Subfigures a-c repeat the Mosolab throughput
accuracy measurement with static, blocked and moving UEs; subfigure d
counts packets aggregated into one TTI under two load regimes — a flow
with spare capacity versus one competing for the cell.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.metrics import ccdf_points, summarize_errors
from repro.analysis.report import Table
from repro.experiments.common import FigureResult, run_session
from repro.experiments.fig09_throughput import ThroughputErrorSeries, \
    _errors_vs_capture
from repro.gnb.cell_config import MOSOLAB_PROFILE

SCENARIOS = ("static", "blocked", "moving")
UE_COUNTS = (1, 2, 3, 4)


def run_scenarios(duration_s: float = 4.0, seed: int = 17) \
        -> dict[str, list[ThroughputErrorSeries]]:
    """Fig 16a-c: one error CCDF per UE count per mobility scenario."""
    out: dict[str, list[ThroughputErrorSeries]] = {}
    for scenario in SCENARIOS:
        series = []
        for n_ues in UE_COUNTS:
            result = run_session(
                MOSOLAB_PROFILE, n_ues=n_ues, duration_s=duration_s,
                seed=seed + n_ues, traffic="mixed",
                channel="pedestrian", mobility=scenario)
            series.append(_errors_vs_capture(result, f"{n_ues} UE"))
        out[scenario] = series
    return out


@dataclass
class AggregationComparison:
    """Fig 16d: packets-per-TTI with and without competition."""

    spare: list[float]          # lone flow, cell mostly idle
    competing: list[float]      # flow sharing the cell

    def spare_cdf(self) -> list[tuple[float, float]]:
        return _cdf(self.spare)

    def competing_cdf(self) -> list[tuple[float, float]]:
        return _cdf(self.competing)


def _cdf(values: list[float]) -> list[tuple[float, float]]:
    ordered = sorted(values)
    n = len(ordered)
    return [(v, (i + 1) / n) for i, v in enumerate(ordered)]


def run_aggregation(duration_s: float = 4.0,
                    seed: int = 18) -> AggregationComparison:
    """Fig 16d's two regimes.

    With spare capacity the scheduler drains every packet as it arrives
    (few packets per TTI); under competition packets queue between a
    UE's scheduling turns and ride out together in large transport
    blocks.
    """
    lone = run_session(MOSOLAB_PROFILE, n_ues=1, duration_s=duration_s,
                       seed=seed, traffic="poisson", rate_bps=3e6)
    crowd = run_session(MOSOLAB_PROFILE, n_ues=6, duration_s=duration_s,
                        seed=seed + 1, traffic="bulk", rate_bps=6e6,
                        max_ues_per_slot=2)
    spare = lone.scope.aggregation.packets_per_tti()
    rnti = crowd.scope.tracked_rntis[0] if crowd.scope.tracked_rntis \
        else None
    competing = crowd.scope.aggregation.packets_per_tti(rnti)
    return AggregationComparison(spare=spare, competing=competing)


def to_result(scenarios: dict[str, list[ThroughputErrorSeries]],
              aggregation: AggregationComparison) -> FigureResult:
    result = FigureResult(figure="fig16")
    for scenario, series in scenarios.items():
        errors = [e for s in series for e in s.errors_kbps]
        if errors:
            result.add_series(f"{scenario}-error-ccdf",
                              ccdf_points(errors))
            result.summary[f"{scenario}_median_kbps"] = \
                summarize_errors(errors).median
    result.add_series("agg-spare", aggregation.spare_cdf())
    result.add_series("agg-competing", aggregation.competing_cdf())
    result.summary["spare_mean_pkts"] = float(np.mean(aggregation.spare))
    result.summary["competing_mean_pkts"] = float(
        np.mean(aggregation.competing))
    return result


def scenario_table(scenarios: dict[str, list[ThroughputErrorSeries]]) \
        -> Table:
    rows = []
    for scenario, series in scenarios.items():
        for line in series:
            if not line.errors_kbps:
                continue
            summary = line.summary()
            rows.append((scenario, line.label, summary.median,
                         summary.p75, summary.p95))
    return Table(
        title="Fig 16a-c - throughput error by UE scenario (Mosolab)",
        columns=("scenario", "UEs", "median kbps", "p75 kbps",
                 "p95 kbps"),
        rows=tuple(rows))


def aggregation_table(aggregation: AggregationComparison) -> Table:
    return Table(
        title="Fig 16d - packets per TTI",
        columns=("regime", "mean pkts/TTI", "p90 pkts/TTI"),
        rows=(
            ("spare", float(np.mean(aggregation.spare)),
             float(np.percentile(aggregation.spare, 90))),
            ("competition", float(np.mean(aggregation.competing)),
             float(np.percentile(aggregation.competing, 90))),
        ))
