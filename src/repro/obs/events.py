"""The observability event schema (version 1).

Every event the bus emits is one flat JSON object — one line of a
``JsonlReporter`` file — carrying a fixed envelope plus free-form
scalar fields:

========== ========= ====================================================
field      type      meaning
========== ========= ====================================================
``v``      int       schema version (this module's ``SCHEMA_VERSION``)
``seq``    int       monotonic per-context sequence number (commit order)
``run_id`` str       session identity shared by every event of a run
``kind``   str       ``event`` | ``span`` | ``counter``
``name``   str       dotted lowercase event name (``stage.span``, ...)
========== ========= ====================================================

Well-known optional fields (typed when present):

* ``cell`` (str) — cell label, bound once per scope;
* ``slot`` (int) — slot index the event describes;
* ``rnti`` (int) — UE identity, for failure clustering;
* ``stage`` (str) — slot-runtime stage name;
* ``reason`` (str) — failure cause (``bler``, ``backpressure``, ...);
* ``outcome`` (str) — span outcome (``ok`` | ``backpressure`` | ``halt``);
* ``duration_us`` (number) — span duration in microseconds;
* ``value`` (number) — counter increment.

Unknown extra fields are allowed (forward compatibility) but must be
JSON scalars — events are flat by design so they stay greppable and
columnar-friendly.
"""

from __future__ import annotations

from typing import Any, Iterable, Mapping

#: Version stamped into every event's ``v`` field.
SCHEMA_VERSION = 1

#: The three event kinds the bus knows.
EVENT_KINDS = ("event", "span", "counter")

#: Envelope fields every event must carry, with their required types.
REQUIRED_FIELDS: dict[str, type] = {
    "v": int,
    "seq": int,
    "run_id": str,
    "kind": str,
    "name": str,
}

#: Well-known optional fields and their allowed types.
OPTIONAL_FIELDS: dict[str, tuple[type, ...]] = {
    "cell": (str,),
    "slot": (int,),
    "rnti": (int,),
    "stage": (str,),
    "reason": (str,),
    "outcome": (str,),
    "duration_us": (int, float),
    "value": (int, float),
    "level": (int,),
    "executor": (str,),
    "fidelity": (str,),
}

#: JSON scalar types permitted for unknown extra fields.
_SCALAR_TYPES = (str, int, float, bool, type(None))


def validate_event(event: Mapping[str, Any]) -> list[str]:
    """Check one event against the schema; returns problem strings.

    An empty list means the event is valid.  The check is tolerant of
    unknown fields (they only need to be JSON scalars) so a newer
    writer's stream still validates under an older reader.
    """
    problems: list[str] = []
    for field, expected in REQUIRED_FIELDS.items():
        if field not in event:
            problems.append(f"missing required field {field!r}")
        elif not isinstance(event[field], expected) \
                or isinstance(event[field], bool):
            problems.append(
                f"field {field!r} must be {expected.__name__}, "
                f"got {type(event[field]).__name__}")
    if not problems:
        if event["v"] != SCHEMA_VERSION:
            problems.append(
                f"unsupported schema version {event['v']!r} "
                f"(expected {SCHEMA_VERSION})")
        if event["kind"] not in EVENT_KINDS:
            problems.append(f"unknown kind {event['kind']!r}")
        if event["seq"] < 0:
            problems.append(f"negative seq {event['seq']!r}")
        if not event["name"]:
            problems.append("empty event name")
    for field, value in event.items():
        if field in REQUIRED_FIELDS:
            continue
        allowed = OPTIONAL_FIELDS.get(field)
        if allowed is not None:
            if not isinstance(value, allowed) or isinstance(value, bool):
                names = "/".join(t.__name__ for t in allowed)
                problems.append(
                    f"field {field!r} must be {names}, "
                    f"got {type(value).__name__}")
        elif not isinstance(value, _SCALAR_TYPES):
            problems.append(
                f"extra field {field!r} must be a JSON scalar, "
                f"got {type(value).__name__}")
    return problems


def validate_events(events: Iterable[Mapping[str, Any]]) \
        -> list[tuple[int, str]]:
    """Validate a whole stream; returns ``(index, problem)`` pairs.

    Also enforces the cross-event contract: ``seq`` strictly increases
    (the bus assigns sequence numbers in commit order) and ``run_id``
    is constant within one stream.
    """
    problems: list[tuple[int, str]] = []
    last_seq = -1
    run_id: str | None = None
    for index, event in enumerate(events):
        for problem in validate_event(event):
            problems.append((index, problem))
        seq = event.get("seq")
        if isinstance(seq, int) and not isinstance(seq, bool):
            if seq <= last_seq:
                problems.append(
                    (index, f"seq {seq} not after previous {last_seq}"))
            last_seq = seq
        this_run = event.get("run_id")
        if isinstance(this_run, str):
            if run_id is None:
                run_id = this_run
            elif this_run != run_id:
                problems.append(
                    (index,
                     f"run_id {this_run!r} differs from {run_id!r}"))
    return problems
