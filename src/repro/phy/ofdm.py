"""OFDM modulation between resource grids and time-domain IQ samples.

This is the boundary the paper's USRP sits on: the gNB's grid becomes
baseband samples, the radio medium perturbs them, and NR-Scope's front end
FFTs each symbol back onto subcarriers (the "major computational cost"
discussed in paper section 4).  A normal cyclic prefix is used with a
uniform length per symbol; the standard's slightly longer first-symbol CP
only matters for timing alignment, which the simulated receiver gets from
the frame synchronizer for free.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.constants import N_SYMBOLS_PER_SLOT
from repro.phy.resource_grid import ResourceGrid


class OfdmError(ValueError):
    """Raised for inconsistent sample geometry."""


def fft_size_for(n_subcarriers: int) -> int:
    """Smallest power-of-two FFT that holds the active subcarriers."""
    if n_subcarriers < 1:
        raise OfdmError(f"need at least one subcarrier: {n_subcarriers}")
    size = 64
    while size < n_subcarriers:
        size *= 2
    return size


@dataclass(frozen=True)
class OfdmConfig:
    """Geometry of the OFDM waveform for one carrier."""

    n_subcarriers: int
    fft_size: int
    cp_len: int

    @classmethod
    def for_grid(cls, n_subcarriers: int,
                 cp_fraction: float = 0.07) -> "OfdmConfig":
        """Derive the FFT/CP geometry for a carrier width."""
        fft = fft_size_for(n_subcarriers)
        return cls(n_subcarriers=n_subcarriers, fft_size=fft,
                   cp_len=max(1, int(round(fft * cp_fraction))))

    @property
    def samples_per_symbol(self) -> int:
        """Time samples per OFDM symbol including its cyclic prefix."""
        return self.fft_size + self.cp_len

    @property
    def samples_per_slot(self) -> int:
        """Time samples in one 14-symbol slot."""
        return self.samples_per_symbol * N_SYMBOLS_PER_SLOT


def modulate_slot(grid: ResourceGrid, config: OfdmConfig) -> np.ndarray:
    """Turn a resource grid into one slot of baseband IQ samples."""
    if grid.n_subcarriers != config.n_subcarriers:
        raise OfdmError(
            f"grid has {grid.n_subcarriers} subcarriers, config expects"
            f" {config.n_subcarriers}")
    n_sc, fft = config.n_subcarriers, config.fft_size
    spectrum = np.zeros((fft, N_SYMBOLS_PER_SLOT), dtype=np.complex128)
    # Centre the active subcarriers on DC, matching NR's grid placement:
    # negative-frequency half first, then positive.
    half = n_sc // 2
    spectrum[fft - half:, :] = grid.data[:half, :]
    spectrum[:n_sc - half, :] = grid.data[half:, :]
    time_symbols = np.fft.ifft(spectrum, axis=0) * np.sqrt(fft)
    out = np.empty(config.samples_per_slot, dtype=np.complex128)
    sps = config.samples_per_symbol
    for sym in range(N_SYMBOLS_PER_SLOT):
        body = time_symbols[:, sym]
        start = sym * sps
        out[start:start + config.cp_len] = body[-config.cp_len:]
        out[start + config.cp_len:start + sps] = body
    return out


def demodulate_slot(samples: np.ndarray, config: OfdmConfig) -> ResourceGrid:
    """Recover a resource grid from one slot of IQ samples.

    The inverse of :func:`modulate_slot` under perfect timing; occupancy
    metadata is unknown to a receiver, so the returned grid reports all
    REs as empty even where data was decoded.
    """
    arr = np.asarray(samples, dtype=np.complex128).ravel()
    if arr.size != config.samples_per_slot:
        raise OfdmError(
            f"expected {config.samples_per_slot} samples, got {arr.size}")
    n_sc, fft = config.n_subcarriers, config.fft_size
    sps = config.samples_per_symbol
    bodies = np.empty((fft, N_SYMBOLS_PER_SLOT), dtype=np.complex128)
    for sym in range(N_SYMBOLS_PER_SLOT):
        start = sym * sps + config.cp_len
        bodies[:, sym] = arr[start:start + fft]
    spectrum = np.fft.fft(bodies, axis=0) / np.sqrt(fft)
    grid = ResourceGrid(n_prb=n_sc // 12)
    half = n_sc // 2
    grid.data[:half, :] = spectrum[fft - half:, :]
    grid.data[half:, :] = spectrum[:n_sc - half, :]
    return grid
