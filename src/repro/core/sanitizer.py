"""nrsan: the runtime half of the stage-purity contract.

:mod:`repro.lint` proves *statically* (rules R006/R007) that the
parallel DCI-decode stage never mutates tracked state or draws stateful
RNG.  This module proves the same thing *dynamically*: an opt-in
instrumented mode that

* wraps the tracked-table snapshot handed to the parallel stage in a
  write-guard proxy (:class:`GuardedTrackedTable` /
  :class:`GuardedTrackedUe`) — the snapshot is frozen the moment it is
  taken, and per-UE mutators (``touch``, attribute stores) trip inside
  the parallel stage;
* wraps the session generator in an :class:`AuditedGenerator` that
  trips on any draw made while a parallel stage is on the call stack.

A trip raises :class:`SanitizerViolation` inside the stage; the
:class:`~repro.core.runtime.SlotRuntime` stores it as ``ctx.error`` and
re-raises it as ``SlotRuntimeError`` at commit, so the violating test
fails loudly in slot order.

Activation: pass an enabled :class:`Sanitizer` explicitly, set the
``NRSAN`` environment variable (``NRSAN=1``), or use the ``nrsan``
pytest fixture.  Disabled, every hook is a pass-through returning its
input unchanged — production runs pay nothing.

Known blind spot: the parallel-stage flag is thread-local and set in
the thread running the stage thunk.  Per-UE shard threads spawned by
``ThreadedExecutor.map`` inside the stage do not inherit it, so RNG
audit does not extend into shards — the *table* guard does, because it
is object-level and frozen unconditionally.

:func:`parallel_stage` is the static anchor: decorating a stage entry
point marks it as a purity root for lint rule R006 without importing
anything at analysis time (the rule matches the decorator name).
"""

from __future__ import annotations

import os
import threading
from contextlib import contextmanager
from typing import Any, Callable, Iterator, Mapping, TypeVar

F = TypeVar("F", bound=Callable[..., Any])

#: Environment variable that switches the instrumented mode on.
NRSAN_ENV = "NRSAN"

#: Generator draw methods audited during the parallel stage.
AUDITED_DRAWS = frozenset({
    "random", "normal", "integers", "uniform", "choice", "shuffle",
    "permutation", "standard_normal", "exponential", "poisson",
    "binomial", "bytes",
})

#: TrackedUe methods that mutate the UE (illegal in the parallel stage).
UE_MUTATORS = frozenset({"touch"})


class SanitizerViolation(RuntimeError):
    """A stage-purity contract violation observed at runtime."""


def parallel_stage(fn: F) -> F:
    """Mark a function as a parallel (pure) stage entry point.

    Purely declarative: the function is returned unchanged.  The marker
    attribute is available to runtime introspection and the decorator
    *name* is what lint rule R006 keys its reachability analysis on.
    """
    fn.__nr_parallel_stage__ = True  # type: ignore[attr-defined]
    return fn


class Sanitizer:
    """The nrsan instrumentation switchboard.

    One instance is shared by the scope (which wraps its RNG and
    tracked snapshots through it) and the runtime (which brackets the
    parallel stage with :meth:`parallel_stage_scope`).
    """

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        #: Violation messages, in trip order (also raised at the site).
        self.violations: list[str] = []
        self._tls = threading.local()
        self._obs: Any = None

    def bind_obs(self, obs: Any) -> None:
        """Attach an observability bus; trips emit ``nrsan.violation``."""
        self._obs = obs if obs else None

    @classmethod
    def from_env(cls) -> "Sanitizer":
        """An instance enabled iff ``NRSAN`` is set to a truthy value."""
        raw = os.environ.get(NRSAN_ENV, "").strip().lower()
        return cls(enabled=raw not in ("", "0", "off", "false", "no"))

    # ------------------------------------------------------------ scope
    @property
    def in_parallel_stage(self) -> bool:
        """Whether this thread is currently inside a parallel stage."""
        return getattr(self._tls, "stage", None) is not None

    @property
    def current_stage(self) -> str | None:
        return getattr(self._tls, "stage", None)

    @contextmanager
    def parallel_stage_scope(self, stage_name: str) -> Iterator[None]:
        """Bracket one parallel-stage execution on this thread."""
        if not self.enabled:
            yield
            return
        previous = getattr(self._tls, "stage", None)
        self._tls.stage = stage_name
        try:
            yield
        finally:
            self._tls.stage = previous

    def _trip(self, message: str) -> None:
        where = self.current_stage or "outside any stage"
        full = f"nrsan: {message} (in {where})"
        self.violations.append(full)
        if self._obs is not None:
            self._obs.emit("nrsan.violation", stage=where,
                           reason=message.split(":", 1)[0])
        raise SanitizerViolation(full)

    # ------------------------------------------------------------ hooks
    def guard_tracked(self, table: dict[int, Any]) -> dict[int, Any]:
        """Freeze a tracked-table snapshot for the parallel stage."""
        if not self.enabled:
            return table
        return GuardedTrackedTable(self, table)

    def audit_rng(self, rng: Any) -> Any:
        """Wrap a Generator so parallel-stage draws trip the sanitizer."""
        if not self.enabled:
            return rng
        return AuditedGenerator(self, rng)


def unwrap_tracked(table: dict[int, Any]) -> dict[int, Any]:
    """Plain-dict copy of a (possibly guarded) tracked snapshot.

    Payload executors pickle the snapshot for worker processes; the
    guards hold a thread-local :class:`Sanitizer` and cannot travel, so
    they are stripped here.  The workers' copies are private, so the
    write-guard contract is preserved by construction: nothing a worker
    does to its copy can reach the parent's table.
    """
    plain: dict[int, Any] = {}
    for rnti, ue in table.items():
        if isinstance(ue, GuardedTrackedUe):
            ue = object.__getattribute__(ue, "_ue")
        plain[rnti] = ue
    return plain


class GuardedTrackedTable(dict):
    """A frozen tracked-table snapshot.

    Any mutation of the mapping itself trips the sanitizer regardless
    of stage — the snapshot's whole point is that it is immutable from
    the moment the backbone takes it.  Values are wrapped in
    :class:`GuardedTrackedUe` so per-UE mutation inside the parallel
    stage trips too (backbone code mutates UEs through the *live*
    table, never through a snapshot).
    """

    def __init__(self, sanitizer: Sanitizer,
                 table: Mapping[int, Any]) -> None:
        super().__init__({rnti: GuardedTrackedUe(sanitizer, ue)
                          for rnti, ue in table.items()})
        self._sanitizer = sanitizer

    def _frozen(self, op: str) -> None:
        self._sanitizer._trip(
            f"'{op}' on a frozen tracked-table snapshot: only backbone "
            f"stages may mutate tracked state, through the live table")

    def __setitem__(self, key: Any, value: Any) -> None:
        self._frozen("__setitem__")

    def __delitem__(self, key: Any) -> None:
        self._frozen("__delitem__")

    def pop(self, *args: Any) -> Any:
        self._frozen("pop")

    def popitem(self) -> Any:
        self._frozen("popitem")

    def clear(self) -> None:
        self._frozen("clear")

    def update(self, *args: Any, **kwargs: Any) -> None:
        self._frozen("update")

    def setdefault(self, *args: Any) -> Any:
        self._frozen("setdefault")


class GuardedTrackedUe:
    """Read-only view of one tracked UE during the parallel stage.

    Attribute reads delegate to the wrapped UE.  Attribute writes and
    mutator methods (``touch``) trip the sanitizer when the calling
    thread is inside a parallel stage; outside one they delegate, since
    the same UE objects are legitimately mutated by backbone and sink
    stages through the live table.
    """

    __slots__ = ("_ue", "_sanitizer")

    def __init__(self, sanitizer: Sanitizer, ue: Any) -> None:
        object.__setattr__(self, "_ue", ue)
        object.__setattr__(self, "_sanitizer", sanitizer)

    def __getattr__(self, name: str) -> Any:
        ue = object.__getattribute__(self, "_ue")
        value = getattr(ue, name)
        if name in UE_MUTATORS:
            sanitizer = object.__getattribute__(self, "_sanitizer")

            def guarded(*args: Any, **kwargs: Any) -> Any:
                if sanitizer.in_parallel_stage:
                    sanitizer._trip(
                        f"TrackedUe.{name}() mutates tracked state "
                        f"inside the parallel stage: defer it via "
                        f"ctx.touch_marks to the sink stage")
                return value(*args, **kwargs)

            return guarded
        return value

    def __setattr__(self, name: str, value: Any) -> None:
        sanitizer = object.__getattribute__(self, "_sanitizer")
        if sanitizer.in_parallel_stage:
            sanitizer._trip(
                f"attribute store 'TrackedUe.{name}' inside the "
                f"parallel stage: the decode stage must be pure")
        setattr(object.__getattribute__(self, "_ue"), name, value)

    def __repr__(self) -> str:
        return f"GuardedTrackedUe({object.__getattribute__(self, '_ue')!r})"


class AuditedGenerator:
    """RNG proxy that forbids draws during the parallel stage.

    Backbone draws delegate untouched, so the audited stream is
    bit-identical to the bare generator's.
    """

    __slots__ = ("_rng", "_sanitizer")

    def __init__(self, sanitizer: Sanitizer, rng: Any) -> None:
        object.__setattr__(self, "_rng", rng)
        object.__setattr__(self, "_sanitizer", sanitizer)

    def __getattr__(self, name: str) -> Any:
        rng = object.__getattribute__(self, "_rng")
        value = getattr(rng, name)
        if name in AUDITED_DRAWS:
            sanitizer = object.__getattribute__(self, "_sanitizer")

            def audited(*args: Any, **kwargs: Any) -> Any:
                if sanitizer.in_parallel_stage:
                    sanitizer._trip(
                        f"Generator.{name}() draw inside the parallel "
                        f"stage: use counter_uniform or draw on the "
                        f"backbone")
                return value(*args, **kwargs)

            return audited
        return value

    def __repr__(self) -> str:
        return f"AuditedGenerator({object.__getattribute__(self, '_rng')!r})"
