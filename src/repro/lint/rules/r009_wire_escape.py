"""R009: wire payloads must not capture mutable shared state.

A ``ProcessExecutor`` run pickles a ``(job, payload)`` per slot into a
spawned worker and pickles the job's result back.  The payload must be
a *projection* of backbone state, not an alias of it: shipping the
live tracked-UE table forks it at a racy snapshot instant (the
backbone keeps discovering/pruning UEs while the pickle walks it),
shipping a ``numpy.random.Generator`` forks the RNG stream, shipping
an ``ObsContext`` or reporter lets a worker emit outside commit order,
and lambdas / open files / lock-holding instances simply fail to
pickle — but only under ``--executor process:N``, where the seed
determinism tests do not look.

This rule runs the wire escape analysis (:mod:`repro.lint.wire`) over
the scan's call graph: every ``Stage(..., pack=...)`` callable and the
job functions its returns name are payload roots, each payload field
and job-result element is classified, and every escape becomes a
finding anchored at the offending expression.  The sanctioned
projections — ``pack_*`` helpers, ``frozenset(tracked)``-style
shallow copies, scalar coercions — pass clean.
"""

from __future__ import annotations

from typing import Iterator

from repro.lint.engine import LintContext
from repro.lint.findings import Finding
from repro.lint.registry import Rule, register


@register
class WireEscapeRule(Rule):
    """Flag shared-state and unpicklable captures in wire payloads."""

    rule_id = "R009"
    title = "mutable shared state escapes into a wire payload"
    needs_program = True

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        program = ctx.program
        if program is None:  # pragma: no cover - engine supplies it
            return
        for root in program.wire.roots:
            if root.rel != ctx.rel:
                continue
            short = root.qualname.split("::", 1)[-1]
            for fld in root.fields:
                for escape in fld.escapes:
                    lineno = escape.lineno or fld.lineno
                    snippet = ""
                    if 1 <= lineno <= len(ctx.lines):
                        snippet = ctx.lines[lineno - 1].strip()
                    where = f"field {fld.key!r}" \
                        if root.role == "pack" else fld.key
                    yield Finding(
                        rule_id=self.rule_id,
                        message=(
                            f"wire payload of '{short}' ({where}) "
                            f"escapes across the process boundary: "
                            f"{escape.detail}"),
                        path=str(ctx.path), rel=ctx.rel,
                        line=lineno, col=escape.col,
                        snippet=snippet)
