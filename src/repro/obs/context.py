"""The observability bus entry point.

``ObsContext.create(reporters, run_id=...)`` is the only constructor
call sites need:

* with no reporters it returns :data:`OBS_NOOP`, a stateless singleton
  whose methods do nothing and whose truthiness is ``False`` — hot
  paths guard emission with ``if obs:`` and pay one pointer comparison
  when the bus is disabled (zero allocations, no dict churn; asserted
  by ``tests/obs/test_noop_overhead.py``);
* with reporters it returns an enabled context that stamps every event
  with the schema version, a monotonic ``seq`` (the commit-order
  contract validated by :func:`repro.obs.events.validate_events`) and
  the session ``run_id``, then fans the event out to every reporter.

``bind(**labels)`` derives a child context sharing the sequence counter
and reporters but adding constant labels (a multi-cell controller binds
``cell=...`` per scope, so one bus serves a whole fleet with a single
globally-ordered stream).
"""

from __future__ import annotations

import os
import time
from contextlib import contextmanager
from threading import Lock
from typing import Any, Iterable, Iterator, Protocol, Union

from repro.obs.events import SCHEMA_VERSION
from repro.obs.reporters import Reporter


class Obs(Protocol):
    """What consumers may assume about either context flavour."""

    @property
    def enabled(self) -> bool: ...  # pragma: no cover - protocol

    def __bool__(self) -> bool: ...  # pragma: no cover - protocol

    def emit(self, name: str, _kind: str = "event",
             **fields: Any) -> None: ...  # pragma: no cover - protocol

    def count(self, name: str, value: float = 1,
              **fields: Any) -> None: ...  # pragma: no cover - protocol

    def timing(self, name: str, duration_s: float,
               **fields: Any) -> None: ...  # pragma: no cover - protocol

    def bind(self, **labels: Any) -> "Obs": ...  # pragma: no cover

    def close(self) -> None: ...  # pragma: no cover - protocol


class _NoOpObsContext:
    """The disabled bus: every method returns immediately.

    A single immutable instance (:data:`OBS_NOOP`) is shared by every
    disabled session.  ``__bool__`` is ``False`` so hot paths can guard
    with ``if obs:`` and skip even the argument packing of a call.
    """

    __slots__ = ()

    enabled = False
    run_id = ""

    def __bool__(self) -> bool:
        return False

    def emit(self, name: str, _kind: str = "event",
             **fields: Any) -> None:
        return None

    def count(self, name: str, value: float = 1,
              **fields: Any) -> None:
        return None

    def timing(self, name: str, duration_s: float,
               **fields: Any) -> None:
        return None

    @contextmanager
    def span(self, name: str, **fields: Any) -> Iterator[None]:
        yield

    def bind(self, **labels: Any) -> "_NoOpObsContext":
        return self

    def close(self) -> None:
        return None


#: The shared disabled-bus singleton.
OBS_NOOP = _NoOpObsContext()


class _Core:
    """State shared by a context and all its ``bind`` children."""

    __slots__ = ("reporters", "run_id", "seq", "lock", "errors")

    def __init__(self, reporters: tuple[Reporter, ...],
                 run_id: str) -> None:
        self.reporters = reporters
        self.run_id = run_id
        self.seq = 0
        self.lock = Lock()
        #: Reporter exceptions swallowed so far (reporters must never
        #: abort a telemetry session).
        self.errors = 0


class ObsContext:
    """The enabled bus: builds events and fans them out.

    Do not construct directly — use :meth:`create`, which returns the
    no-op singleton when no reporters are configured.
    """

    __slots__ = ("_core", "_labels")

    enabled = True

    def __init__(self, core: _Core,
                 labels: tuple[tuple[str, Any], ...]) -> None:
        self._core = core
        self._labels = labels

    @classmethod
    def create(cls, reporters: Iterable[Reporter] = (),
               run_id: str | None = None,
               **labels: Any) -> "AnyObsContext":
        """Build a context, or the no-op singleton without reporters."""
        bundle = tuple(reporters)
        if not bundle:
            return OBS_NOOP
        if run_id is None:
            run_id = os.urandom(6).hex()
        return cls(_Core(bundle, run_id), tuple(labels.items()))

    # ------------------------------------------------------- properties
    def __bool__(self) -> bool:
        return True

    @property
    def run_id(self) -> str:
        return self._core.run_id

    @property
    def reporter_errors(self) -> int:
        return self._core.errors

    # ------------------------------------------------------- emission
    def emit(self, name: str, _kind: str = "event",
             **fields: Any) -> None:
        """Assemble one event and hand it to every reporter."""
        core = self._core
        with core.lock:
            seq = core.seq
            core.seq += 1
        event: dict[str, Any] = {
            "v": SCHEMA_VERSION, "seq": seq, "run_id": core.run_id,
            "kind": _kind, "name": name,
        }
        for key, value in self._labels:
            event[key] = value
        if fields:
            event.update(fields)
        for reporter in core.reporters:
            try:
                reporter.emit(event)
            except Exception:  # noqa: BLE001 - reporters must not abort
                core.errors += 1

    def count(self, name: str, value: float = 1,
              **fields: Any) -> None:
        """Emit a monotonic counter increment."""
        self.emit(name, _kind="counter", value=value, **fields)

    def timing(self, name: str, duration_s: float,
               **fields: Any) -> None:
        """Emit a span with an externally measured duration."""
        self.emit(name, _kind="span",
                  duration_us=round(duration_s * 1e6, 3), **fields)

    @contextmanager
    def span(self, name: str, **fields: Any) -> Iterator[None]:
        """Time a block and emit it as a span event."""
        start = time.perf_counter()
        try:
            yield
        finally:
            self.timing(name, time.perf_counter() - start, **fields)

    # ------------------------------------------------------- lifecycle
    def bind(self, **labels: Any) -> "ObsContext":
        """Child context with extra constant labels on every event."""
        merged = dict(self._labels)
        merged.update(labels)
        return ObsContext(self._core, tuple(merged.items()))

    def close(self) -> None:
        """Close every reporter (idempotent per reporter contract)."""
        for reporter in self._core.reporters:
            reporter.close()


#: Either context flavour — the annotation consumers should use.
AnyObsContext = Union[ObsContext, _NoOpObsContext]
