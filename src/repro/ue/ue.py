"""The simulated user equipment and its ground-truth packet capture.

Each UE owns its traffic buffers, fading channel and mobility model.  The
``PacketCapture`` plays the role of tcpdump on the paper's phones
(section 5.2.2): it records every MAC-delivered payload with a timestamp,
and windowed bit rates computed from it are the ground truth NR-Scope's
estimates are compared against.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field

from repro.ue.channel import FadingChannel, snr_to_cqi
from repro.ue.mobility import MobilityModel, StaticUe
from repro.ue.traffic import TrafficBuffer


class UeError(ValueError):
    """Raised for inconsistent UE state transitions."""


@dataclass(frozen=True)
class PacketRecord:
    """One delivered payload: when, how big, which direction."""

    time_s: float
    size_bytes: int
    downlink: bool
    n_packets: int = 1


class PacketCapture:
    """tcpdump-equivalent trace of payloads delivered to/from one UE."""

    def __init__(self) -> None:
        self._records: list[PacketRecord] = []
        self._times: list[float] = []

    def record(self, time_s: float, size_bytes: int, downlink: bool,
               n_packets: int = 1) -> None:
        """Append one delivery; times must be non-decreasing."""
        if self._times and time_s < self._times[-1]:
            raise UeError("capture timestamps must be non-decreasing")
        if size_bytes < 0:
            raise UeError(f"negative payload size: {size_bytes}")
        self._records.append(PacketRecord(time_s, size_bytes, downlink,
                                          n_packets))
        self._times.append(time_s)

    def __len__(self) -> int:
        return len(self._records)

    @property
    def records(self) -> list[PacketRecord]:
        """All recorded deliveries, oldest first."""
        return list(self._records)

    def bytes_between(self, start_s: float, end_s: float,
                      downlink: bool = True) -> int:
        """Payload bytes delivered in ``[start_s, end_s)``."""
        lo = bisect.bisect_left(self._times, start_s)
        hi = bisect.bisect_left(self._times, end_s)
        return sum(r.size_bytes for r in self._records[lo:hi]
                   if r.downlink == downlink)

    def bitrate_series(self, window_s: float, end_time_s: float,
                       downlink: bool = True) -> list[tuple[float, float]]:
        """(window end time, bits/s) samples over the whole capture."""
        if window_s <= 0:
            raise UeError(f"window must be positive: {window_s}")
        series = []
        t = window_s
        while t <= end_time_s + 1e-9:
            bits = 8.0 * self.bytes_between(t - window_s, t, downlink)
            series.append((t, bits / window_s))
            t += window_s
        return series


@dataclass
class UserEquipment:
    """One simulated device attached (or attaching) to the cell."""

    ue_id: int
    dl_buffer: TrafficBuffer
    ul_buffer: TrafficBuffer
    channel: FadingChannel
    mobility: MobilityModel = field(default_factory=StaticUe)
    arrival_time_s: float = 0.0
    departure_time_s: float | None = None

    def __post_init__(self) -> None:
        self.rnti: int | None = None
        self.capture = PacketCapture()
        self.current_snr_db: float = self.channel.mean_snr_db
        self.current_cqi: int = snr_to_cqi(self.current_snr_db)
        self.delivered_dl_bits = 0
        self.delivered_ul_bits = 0

    @property
    def is_connected(self) -> bool:
        """True once the RACH process has granted a C-RNTI."""
        return self.rnti is not None

    def connect(self, rnti: int) -> None:
        """Complete the RACH process with an assigned C-RNTI."""
        if self.rnti is not None:
            raise UeError(f"UE {self.ue_id} already connected")
        self.rnti = rnti

    def disconnect(self) -> None:
        """Release the RRC connection (UE leaves the RAN)."""
        self.rnti = None

    def advance_slot(self, slot_index: int) -> None:
        """Per-slot housekeeping: traffic arrivals, fading, CQI."""
        self.dl_buffer.arrive(slot_index)
        self.ul_buffer.arrive(slot_index)
        snr = self.channel.step() + self.mobility.step(slot_index)
        self.current_snr_db = snr
        self.current_cqi = snr_to_cqi(snr)

    def deliver_downlink(self, time_s: float, payload_bytes: int,
                         n_packets: int) -> None:
        """Record a successfully decoded downlink transport block."""
        self.delivered_dl_bits += payload_bytes * 8
        self.capture.record(time_s, payload_bytes, downlink=True,
                            n_packets=n_packets)

    def deliver_uplink(self, time_s: float, payload_bytes: int,
                       n_packets: int) -> None:
        """Record an uplink transport block the gNB accepted."""
        self.delivered_ul_bits += payload_bytes * 8
        self.capture.record(time_s, payload_bytes, downlink=False,
                            n_packets=n_packets)

    def active_time_s(self, now_s: float) -> float:
        """Seconds this UE has been in the RAN (paper Fig 10)."""
        end = self.departure_time_s if self.departure_time_s is not None \
            else now_s
        return max(0.0, end - self.arrival_time_s)
