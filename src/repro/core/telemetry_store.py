"""Columnar telemetry store: the spine under :class:`TelemetryLog`.

The seed kept one Python dataclass per decoded DCI and answered every
query (`bits_between`, `bitrate_series`, `mcs_distribution`, ...) by
looping over those objects — fine for a lab session, hopeless for the
paper's "millions of users" post-processing story.  This module holds
the same records as append-only numpy structured-array *chunks*:

* one packed row per decode (:data:`RECORD_DTYPE`, ~46 bytes vs several
  hundred for a boxed dataclass), appended into a fixed-size head chunk
  that is sealed and replaced when full;
* a lazily built per-RNTI row index (``rows_for_rnti``), cached until
  the next append, so per-UE queries gather once and then reduce with
  numpy kernels;
* vectorized query kernels — windowed new-data bits, whole bitrate
  series in one binned pass, MCS histograms, retransmission ratios and
  the cross-cell activity matrix ``multicell.correlate_streams`` needs;
* chunked on-disk segments (one ``.npy`` per chunk plus a JSON
  manifest) alongside the existing JSONL format, and pickle support so
  a fleet checkpoint carries the columnar payload as-is.

Windowing fixes the seed's float drift: window ``k`` spans
``[k * window_s, (k + 1) * window_s)`` with edges computed from the
integer window index (one multiply each), never by accumulating
``t += window_s``.

The store knows nothing about :class:`~repro.core.telemetry.TelemetryRecord`
— materialisation back into dataclasses lives in the facade, keeping
this module dependency-free below numpy.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Iterable, Sequence

import numpy as np


class TelemetryStoreError(ValueError):
    """Raised for malformed store operations."""


#: Field order mirrors ``TelemetryRecord`` exactly; the facade relies on
#: it when materialising rows back into dataclasses.
RECORD_FIELDS: tuple[str, ...] = (
    "slot_index", "time_s", "rnti", "downlink", "tbs_bits", "n_prb",
    "n_symbols", "mcs_index", "harq_id", "ndi", "rv",
    "is_retransmission", "aggregation_level")

#: Packed row layout.  Widths are sized to the 3GPP value ranges the
#: decode path can produce (RNTI <= 0xFFFF, MCS < 32, AL <= 16, ...);
#: numpy >= 1.24 raises ``OverflowError`` on an out-of-range Python int
#: rather than wrapping, so a bad producer fails loudly.
RECORD_DTYPE = np.dtype([
    ("slot_index", np.int64),
    ("time_s", np.float64),
    ("rnti", np.int32),
    ("downlink", np.uint8),
    ("tbs_bits", np.int64),
    ("n_prb", np.int32),
    ("n_symbols", np.int16),
    ("mcs_index", np.int16),
    ("harq_id", np.int16),
    ("ndi", np.int16),
    ("rv", np.int16),
    ("is_retransmission", np.uint8),
    ("aggregation_level", np.int16),
])

#: Rows per chunk.  4096 rows is ~190 KB — large enough that chunk
#: bookkeeping vanishes, small enough that a short session wastes
#: little head-room.
DEFAULT_CHUNK_ROWS = 4096

#: On-disk segment manifest schema marker.
SEGMENT_SCHEMA = "telemetry-columnar/v1"

#: Matches the seed's window-count tolerance (``t <= end + 1e-9``).
_WINDOW_EDGE_TOLERANCE_S = 1e-9


def window_count(end_time_s: float, window_s: float) -> int:
    """Windows fully contained in ``[0, end_time_s]``.

    The count the seed's ``t += window_s`` loop produced, computed
    without accumulation: ``floor((end + tol) / window)``.
    """
    if window_s <= 0:
        raise TelemetryStoreError(
            f"window must be positive: {window_s}")
    return max(0, int(np.floor(
        (end_time_s + _WINDOW_EDGE_TOLERANCE_S) / window_s)))


def window_edges(n_windows: int, window_s: float) -> np.ndarray:
    """``n + 1`` window edges ``k * window_s`` from integer indices.

    One multiply per edge — bitwise identical to ``k * window_s`` in
    Python, with none of the drift of repeated addition.
    """
    return np.arange(n_windows + 1, dtype=np.int64) * float(window_s)


class TelemetryStore:
    """Append-only columnar store of decoded-DCI rows."""

    def __init__(self, chunk_rows: int = DEFAULT_CHUNK_ROWS) -> None:
        if chunk_rows < 1:
            raise TelemetryStoreError(
                f"chunk_rows must be >= 1: {chunk_rows}")
        self.chunk_rows = chunk_rows
        self._chunks: list[np.ndarray] = []     # sealed, immutable
        self._head = np.zeros(chunk_rows, dtype=RECORD_DTYPE)
        self._head_used = 0
        self._count = 0
        # Caches, all invalidated by append: the consolidated table,
        # the per-RNTI row index and the sorted RNTI list.
        self._table: np.ndarray | None = None
        self._rnti_rows: dict[int, np.ndarray] = {}
        self._rnti_table: dict[int, np.ndarray] = {}
        self._rnti_list: list[int] | None = None
        self._cache_rows = 0

    # ------------------------------------------------------------ append
    def append(self, slot_index: int, time_s: float, rnti: int,
               downlink: bool, tbs_bits: int, n_prb: int,
               n_symbols: int, mcs_index: int, harq_id: int, ndi: int,
               rv: int, is_retransmission: bool,
               aggregation_level: int) -> None:
        """Append one decode as a packed row."""
        if self._head_used == self.chunk_rows:
            self._chunks.append(self._head)
            self._head = np.zeros(self.chunk_rows, dtype=RECORD_DTYPE)
            self._head_used = 0
        self._head[self._head_used] = (
            slot_index, time_s, rnti, 1 if downlink else 0, tbs_bits,
            n_prb, n_symbols, mcs_index, harq_id, ndi, rv,
            1 if is_retransmission else 0, aggregation_level)
        self._head_used += 1
        self._count += 1
        self._table = None

    def __len__(self) -> int:
        return self._count

    # ------------------------------------------------------------- views
    def table(self) -> np.ndarray:
        """The consolidated structured array, rows in append order.

        Built on demand and cached until the next append.  Treat it as
        read-only: it is shared by every query until invalidated.
        """
        if self._table is None:
            parts = list(self._chunks)
            if self._head_used:
                parts.append(self._head[:self._head_used])
            if not parts:
                self._table = np.empty(0, dtype=RECORD_DTYPE)
            elif len(parts) == 1 and self._head_used == 0:
                # A lone sealed chunk is immutable: share it.  A head
                # slice is still being written, so it must be copied
                # (np.concatenate below always copies).
                self._table = parts[0]
            else:
                self._table = np.concatenate(parts)
        return self._table

    def column(self, name: str) -> np.ndarray:
        """One consolidated column, rows in append order."""
        if name not in RECORD_FIELDS:
            raise TelemetryStoreError(f"unknown column: {name!r}")
        return self.table()[name]

    def _refresh_index(self) -> None:
        if self._cache_rows != self._count:
            self._rnti_rows.clear()
            self._rnti_table.clear()
            self._rnti_list = None
            self._cache_rows = self._count

    def rows_for_rnti(self, rnti: int) -> np.ndarray:
        """Row indices of one RNTI, ascending (append order)."""
        self._refresh_index()
        rows = self._rnti_rows.get(rnti)
        if rows is None:
            rows = np.flatnonzero(self.column("rnti") == rnti)
            self._rnti_rows[rnti] = rows
        return rows

    def rntis(self) -> list[int]:
        """Every RNTI seen, sorted ascending."""
        self._refresh_index()
        if self._rnti_list is None:
            self._rnti_list = [int(r) for r in
                               np.unique(self.column("rnti"))]
        return list(self._rnti_list)

    def _subtable(self, rnti: int | None) -> np.ndarray:
        if rnti is None:
            return self.table()
        sub = self._rnti_table.get(rnti)
        if sub is None:
            # The gather is the expensive part of a per-UE query, so
            # the packed subtable is cached alongside the row index
            # (same invalidation: any append).
            sub = self.table()[self.rows_for_rnti(rnti)]
            self._rnti_table[rnti] = sub
        return sub

    # ----------------------------------------------------- query kernels
    def bits_between(self, rnti: int, start_s: float, end_s: float,
                     downlink: bool = True,
                     count_retransmissions: bool = False) -> int:
        """New-data bits scheduled for a UE in ``[start_s, end_s)``."""
        sub = self._subtable(rnti)
        if sub.size == 0:
            return 0
        times = sub["time_s"]
        mask = (sub["downlink"] == (1 if downlink else 0)) \
            & (times >= start_s) & (times < end_s)
        if not count_retransmissions:
            mask &= sub["is_retransmission"] == 0
        return int(sub["tbs_bits"][mask].sum())

    def bitrate_series(self, rnti: int, window_s: float,
                       end_time_s: float, downlink: bool = True) \
            -> list[tuple[float, float]]:
        """(window end, bits/s) series in one binned pass.

        Window ``k`` spans ``[k * window_s, (k + 1) * window_s)`` with
        edges computed from the integer window index — the whole series
        costs one gather plus one ``searchsorted`` bin, instead of the
        seed's one full scan per window.
        """
        n_windows = window_count(end_time_s, window_s)
        edges = window_edges(n_windows, window_s)
        if n_windows == 0:
            return []
        sub = self._subtable(rnti)
        mask = (sub["downlink"] == (1 if downlink else 0)) \
            & (sub["is_retransmission"] == 0)
        times = sub["time_s"][mask]
        bits = sub["tbs_bits"][mask]
        # searchsorted against the edge array reproduces the interval
        # test ``k*w <= t < (k+1)*w`` exactly (same float products).
        idx = np.searchsorted(edges, times, side="right") - 1
        keep = (idx >= 0) & (idx < n_windows)
        sums = np.bincount(idx[keep], weights=bits[keep],
                           minlength=n_windows)
        return [(float(edges[k + 1]), float(sums[k]) / window_s)
                for k in range(n_windows)]

    def mcs_distribution(self, rnti: int | None = None,
                         downlink: bool = True) -> list[int]:
        """MCS indices of decoded new-data DCIs, in append order."""
        sub = self._subtable(rnti)
        mask = (sub["downlink"] == (1 if downlink else 0)) \
            & (sub["is_retransmission"] == 0)
        mcs: list[int] = sub["mcs_index"][mask].tolist()
        return mcs

    def retransmission_ratio(self, rnti: int | None = None,
                             downlink: bool = True) -> float:
        """Fraction of decoded DCIs that were retransmissions."""
        sub = self._subtable(rnti)
        relevant = sub["downlink"] == (1 if downlink else 0)
        n = int(relevant.sum())
        if n == 0:
            return 0.0
        retx = int((sub["is_retransmission"][relevant] != 0).sum())
        return retx / n

    def activity_matrix(self, rntis: Sequence[int], bin_s: float,
                        end_s: float) -> np.ndarray:
        """Binned new-data DL bits per RNTI: shape ``(len(rntis), bins)``.

        The correlation feature of ``multicell.correlate_streams``,
        built for *every* requested RNTI in one scatter-add pass over
        the table (the seed rebuilt one vector per RNTI pair).
        """
        if bin_s <= 0:
            raise TelemetryStoreError(f"bin width must be positive: {bin_s}")
        n_bins = max(1, int(round(end_s / bin_s)))
        out = np.zeros((len(rntis), n_bins))
        if not rntis or self._count == 0:
            return out
        table = self.table()
        mask = (table["downlink"] == 1) \
            & (table["is_retransmission"] == 0)
        rnti_col = table["rnti"][mask]
        times = table["time_s"][mask]
        bits = table["tbs_bits"][mask]
        wanted = np.asarray(rntis, dtype=rnti_col.dtype)
        order = np.argsort(wanted, kind="stable")
        sorted_wanted = wanted[order]
        pos = np.searchsorted(sorted_wanted, rnti_col)
        pos = np.clip(pos, 0, len(rntis) - 1)
        hit = sorted_wanted[pos] == rnti_col
        row_idx = order[pos[hit]]
        bin_idx = np.minimum((times[hit] / bin_s).astype(np.int64),
                             n_bins - 1)
        np.add.at(out, (row_idx, bin_idx), bits[hit])
        return out

    def time_extents(self, rnti: int) -> tuple[float, float] | None:
        """(first, last) record time of one RNTI, or None if unseen."""
        rows = self.rows_for_rnti(rnti)
        if rows.size == 0:
            return None
        times = self.column("time_s")
        return float(times[rows[0]]), float(times[rows[-1]])

    # -------------------------------------------------- on-disk segments
    def write_segments(self, directory: str | Path) -> int:
        """Write the store as chunked ``.npy`` segments plus a manifest.

        Returns the number of rows written.  The directory is created;
        existing segment files are overwritten.
        """
        target = Path(directory)
        target.mkdir(parents=True, exist_ok=True)
        parts = list(self._chunks)
        if self._head_used:
            parts.append(self._head[:self._head_used])
        names: list[str] = []
        for index, part in enumerate(parts):
            name = f"segment-{index:05d}.npy"
            np.save(target / name, part)
            names.append(name)
        manifest = {
            "schema": SEGMENT_SCHEMA,
            "dtype": [[n, str(RECORD_DTYPE.fields[n][0])]
                      for n in RECORD_DTYPE.names or ()],
            "chunk_rows": self.chunk_rows,
            "rows": self._count,
            "segments": names,
        }
        (target / "manifest.json").write_text(
            json.dumps(manifest, indent=2, sort_keys=True) + "\n",
            encoding="utf-8")
        return self._count

    @classmethod
    def read_segments(cls, directory: str | Path) -> "TelemetryStore":
        """Reload a store written by :meth:`write_segments`."""
        target = Path(directory)
        manifest_path = target / "manifest.json"
        if not manifest_path.exists():
            raise TelemetryStoreError(
                f"no segment manifest at {manifest_path}")
        manifest = json.loads(manifest_path.read_text(encoding="utf-8"))
        if manifest.get("schema") != SEGMENT_SCHEMA:
            raise TelemetryStoreError(
                f"unknown segment schema: {manifest.get('schema')!r}")
        declared = [tuple(item) for item in manifest.get("dtype", [])]
        current = [(n, str(RECORD_DTYPE.fields[n][0]))
                   for n in RECORD_DTYPE.names or ()]
        if declared != current:
            raise TelemetryStoreError(
                "segment dtype does not match RECORD_DTYPE "
                f"(found {declared!r})")
        store = cls(chunk_rows=int(manifest.get(
            "chunk_rows", DEFAULT_CHUNK_ROWS)))
        for name in manifest.get("segments", []):
            part = np.load(target / name)
            if part.dtype != RECORD_DTYPE:
                raise TelemetryStoreError(
                    f"segment {name} has dtype {part.dtype}")
            store.extend_rows(part)
        if len(store) != int(manifest.get("rows", len(store))):
            raise TelemetryStoreError(
                f"manifest declares {manifest.get('rows')} rows, "
                f"segments carry {len(store)}")
        return store

    def extend_rows(self, rows: np.ndarray) -> None:
        """Bulk-append already-packed rows (segment reload path)."""
        if rows.dtype != RECORD_DTYPE:
            raise TelemetryStoreError(
                f"rows must have RECORD_DTYPE, got {rows.dtype}")
        for start in range(0, len(rows), self.chunk_rows):
            batch = rows[start:start + self.chunk_rows]
            free = self.chunk_rows - self._head_used
            if len(batch) > free:
                self._head[self._head_used:] = batch[:free]
                self._chunks.append(self._head)
                self._head = np.zeros(self.chunk_rows,
                                      dtype=RECORD_DTYPE)
                self._head_used = 0
                batch = batch[free:]
            self._head[self._head_used:
                       self._head_used + len(batch)] = batch
            self._head_used += len(batch)
        self._count += len(rows)
        self._table = None

    # ------------------------------------------------------------ pickle
    def __getstate__(self) -> dict[str, Any]:
        """Checkpoint payload: sealed chunks + trimmed head, no caches."""
        return {
            "chunk_rows": self.chunk_rows,
            "chunks": self._chunks,
            "head": self._head[:self._head_used].copy(),
            "count": self._count,
        }

    def __setstate__(self, state: dict[str, Any]) -> None:
        self.chunk_rows = state["chunk_rows"]
        self._chunks = state["chunks"]
        self._head = np.zeros(self.chunk_rows, dtype=RECORD_DTYPE)
        head = state["head"]
        self._head[:len(head)] = head
        self._head_used = len(head)
        self._count = state["count"]
        self._table = None
        self._rnti_rows = {}
        self._rnti_table = {}
        self._rnti_list = None
        self._cache_rows = 0

    # -------------------------------------------------------- iteration
    def iter_row_tuples(self) -> Iterable[tuple]:
        """Rows as Python-scalar tuples in :data:`RECORD_FIELDS` order."""
        return iter(self.table().tolist())
