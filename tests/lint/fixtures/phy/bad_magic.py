"""R001 fixture: magic 3GPP literals used inline."""


def wrap_sfn(sfn):
    # 1024 is SFN_MODULO; inline use must be flagged.
    return sfn % 1024


def is_si_rnti(rnti):
    # 65535 is SI_RNTI / MAX_RNTI; inline use must be flagged.
    return rnti == 0xFFFF
