"""Sniffer-side UCI telemetry (the paper's section 7 future work).

Decoding the uplink control channel gives NR-Scope the UE-side view the
DCI stream lacks: scheduling requests (demand before any grant exists)
and the CQI reports that drive the gNB's link adaptation.  This module
stores decoded reports and answers the queries an uplink-scheduling
analysis needs.
"""

from __future__ import annotations

from dataclasses import dataclass


class UciTelemetryError(ValueError):
    """Raised for malformed queries."""


@dataclass(frozen=True)
class UciObservation:
    """One decoded PUCCH report."""

    slot_index: int
    time_s: float
    rnti: int
    cqi: int | None
    scheduling_request: bool
    harq_ack: tuple[int, ...]


class UciTelemetry:
    """Indexed store of decoded uplink control information."""

    def __init__(self) -> None:
        self._observations: list[UciObservation] = []
        self._by_rnti: dict[int, list[UciObservation]] = {}

    def add(self, observation: UciObservation) -> None:
        """Record one decoded report."""
        self._observations.append(observation)
        self._by_rnti.setdefault(observation.rnti, []) \
            .append(observation)

    def __len__(self) -> int:
        return len(self._observations)

    @property
    def observations(self) -> list[UciObservation]:
        """Every decoded report, oldest first."""
        return list(self._observations)

    def for_rnti(self, rnti: int) -> list[UciObservation]:
        """All reports from one UE, oldest first."""
        return list(self._by_rnti.get(rnti, []))

    def rntis(self) -> list[int]:
        """Every UE heard on the PUCCH."""
        return sorted(self._by_rnti)

    def cqi_series(self, rnti: int) -> list[tuple[float, int]]:
        """(time, CQI) reports — the UE's own channel-quality story."""
        return [(o.time_s, o.cqi) for o in self._by_rnti.get(rnti, [])
                if o.cqi is not None]

    def latest_cqi(self, rnti: int) -> int | None:
        """Most recent CQI report, or None."""
        series = self.cqi_series(rnti)
        return series[-1][1] if series else None

    def scheduling_request_count(self, rnti: int) -> int:
        """How often this UE raised its hand for an uplink grant."""
        return sum(o.scheduling_request
                   for o in self._by_rnti.get(rnti, []))

    def nack_ratio(self, rnti: int) -> float:
        """Fraction of reported HARQ-ACK bits that were NACKs.

        The UE-side complement of the NDI-based retransmission
        tracking: both should tell the same story.
        """
        acks = [bit for o in self._by_rnti.get(rnti, [])
                for bit in o.harq_ack]
        if not acks:
            return 0.0
        return 1.0 - sum(acks) / len(acks)

    def forget(self, rnti: int) -> None:
        """Drop reports for a departed UE."""
        self._by_rnti.pop(rnti, None)
