"""R004: raw slot/frame modular arithmetic outside the numerology layer.

``slot_index % 20`` hard-codes the 30 kHz slots-per-frame count;
``sfn % 1024`` hard-codes the SFN modulus.  Both are correct today and
silently wrong the day a 15/60 kHz profile (or a longer counter) walks
through the same code — the exact class of drift the paper's telemetry
loop cannot tolerate.  Slot and frame reductions must route through
:mod:`repro.phy.numerology` (``slots_per_frame``, ``SlotClock``) or
the named constants (``SFN_MODULO``).

``phy/numerology.py`` and ``constants.py`` are exempt: they are the
helpers this rule funnels everyone towards.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.astutil import int_value
from repro.lint.engine import LintContext
from repro.lint.findings import Finding
from repro.lint.registry import Rule, register

#: Moduli that encode slot/frame structure: slots per frame at each SCS
#: (10/20/40), subframes and half-frames in symbols terms (80/160) and
#: the SFN wrap.
SLOT_FRAME_MODULI = {10, 20, 40, 80, 160, 320, 640, 1024}

#: The modules allowed to do raw numerology arithmetic.
EXEMPT_BASENAMES = {"numerology.py", "constants.py"}


@register
class SlotArithmeticRule(Rule):
    """Flag slot/frame modulo reductions that bypass numerology."""

    rule_id = "R004"
    title = "raw slot/frame arithmetic bypassing the numerology helpers"

    def applies(self, rel: str) -> bool:
        return rel.rsplit("/", 1)[-1] not in EXEMPT_BASENAMES

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not (isinstance(node, ast.BinOp)
                    and isinstance(node.op, ast.Mod)):
                continue
            modulus = int_value(node.right)
            if modulus in SLOT_FRAME_MODULI:
                yield self.finding(
                    ctx, node,
                    f"raw '% {modulus}' slot/frame arithmetic: use "
                    f"slots_per_frame()/SlotClock or the named constant "
                    f"(SFN_MODULO) so other numerologies stay correct")
