"""Come-and-go UE populations for the commercial-cell experiments.

Paper section 5.3.1 measures live T-Mobile cells: 400-600 distinct UEs
per 10 minutes in cell 1 (100-200 in cell 2), 90% of which stay under
35 seconds.  This module generates session processes with exactly those
statistics: Poisson arrivals and log-normal holding times whose
90th percentile is calibrated to the paper's measurement.

The generator is useful standalone (Figs 10 and 11 are pure statistics
of the process) and as the arrival driver of a full RAN simulation.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np


class PopulationError(ValueError):
    """Raised for infeasible population parameters."""


@dataclass(frozen=True)
class Session:
    """One UE's visit to the RAN."""

    ue_id: int
    arrival_s: float
    holding_s: float

    @property
    def departure_s(self) -> float:
        """When the UE leaves the RAN."""
        return self.arrival_s + self.holding_s

    def active_at(self, t: float) -> bool:
        """True while the session holds the RAN."""
        return self.arrival_s <= t < self.departure_s


@dataclass(frozen=True)
class PopulationProfile:
    """Arrival/holding statistics for one cell and time of day."""

    name: str
    arrivals_per_second: float
    holding_p90_s: float = 35.0
    holding_sigma: float = 1.0

    @property
    def holding_median_s(self) -> float:
        """Log-normal median implied by the calibrated 90th percentile."""
        # P(T < p90) = 0.9 with ln T ~ N(ln median, sigma) gives
        # ln median = ln p90 - 1.2816 sigma.
        return self.holding_p90_s * math.exp(-1.2816 * self.holding_sigma)

    def expected_distinct(self, duration_s: float) -> float:
        """Expected distinct UEs in a window (paper: 400-600 per 10 min)."""
        return self.arrivals_per_second * duration_s


#: Profiles calibrated to section 5.3.1: cell 1 sees 400-600 distinct UEs
#: per 10 minutes depending on time of day, cell 2 sees 100-200.
TMOBILE_CELL1_PROFILES = {
    "morning": PopulationProfile("cell1-morning", 400 / 600.0),
    "afternoon": PopulationProfile("cell1-afternoon", 600 / 600.0),
    "night": PopulationProfile("cell1-night", 450 / 600.0),
}
TMOBILE_CELL2_PROFILES = {
    "morning": PopulationProfile("cell2-morning", 120 / 600.0),
    "afternoon": PopulationProfile("cell2-afternoon", 200 / 600.0),
    "night": PopulationProfile("cell2-night", 140 / 600.0),
}


class ComeAndGoProcess:
    """Generates :class:`Session` streams from a profile."""

    def __init__(self, profile: PopulationProfile, seed: int = 0) -> None:
        if profile.arrivals_per_second <= 0:
            raise PopulationError("arrival rate must be positive")
        self.profile = profile
        self._rng = np.random.default_rng(seed)

    def generate(self, duration_s: float,
                 first_ue_id: int = 0) -> list[Session]:
        """All sessions arriving within ``[0, duration_s)``."""
        if duration_s <= 0:
            raise PopulationError("duration must be positive")
        sessions = []
        t = 0.0
        ue_id = first_ue_id
        mu = math.log(self.profile.holding_median_s)
        sigma = self.profile.holding_sigma
        while True:
            t += float(self._rng.exponential(
                1.0 / self.profile.arrivals_per_second))
            if t >= duration_s:
                break
            holding = float(self._rng.lognormal(mu, sigma))
            sessions.append(Session(ue_id=ue_id, arrival_s=t,
                                    holding_s=holding))
            ue_id += 1
        return sessions


def active_counts(sessions: list[Session], duration_s: float,
                  bin_s: float) -> np.ndarray:
    """UEs active in each ``bin_s`` window (paper Fig 11).

    A UE counts toward a bin when its session overlaps the bin at all,
    matching "number of UEs the gNB schedules per second/minute".
    """
    if bin_s <= 0:
        raise PopulationError("bin width must be positive")
    n_bins = int(math.ceil(duration_s / bin_s))
    counts = np.zeros(n_bins, dtype=int)
    for session in sessions:
        first = int(session.arrival_s / bin_s)
        last = int(min(session.departure_s, duration_s - 1e-9) / bin_s)
        counts[first:last + 1] += 1
    return counts


def holding_time_ccdf(sessions: list[Session],
                      grid_s: np.ndarray) -> np.ndarray:
    """P(active time > t) over a grid (paper Fig 10)."""
    if not sessions:
        raise PopulationError("no sessions to analyse")
    holdings = np.array([s.holding_s for s in sessions])
    return np.array([(holdings > t).mean() for t in grid_s])
