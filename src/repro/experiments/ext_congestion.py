"""Extension experiment: RAN-aware congestion control (paper section 6).

"The UE can instruct NR-Scope to send channel feedback to a sender ...
NR-Scope's feedback is faster than half an RTT."  This experiment
closes that loop: one sender adapts its offered rate from NR-Scope's
spare-capacity feedback, a baseline sender runs classic AIMD on delayed
end-to-end delivery reports.  Mid-session the UE's channel collapses
(blockage) and later recovers; the RAN-aware sender should track the
capacity change faster in both directions — the PBE-CC argument the
paper cites.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.analysis.report import Table
from repro.constants import TTI_DURATION_S
from repro.core.scope import NRScope
from repro.experiments.common import FigureResult
from repro.gnb.cell_config import MOSOLAB_PROFILE
from repro.simulation import Simulation
from repro.ue.channel import FadingChannel
from repro.ue.traffic import ControlledRate, PoissonPackets, \
    TrafficBuffer

#: Control interval of both senders.
CONTROL_S = 0.05

#: End-to-end feedback delay for the baseline (half of a ~100 ms RTT on
#: each leg: reports describe the state one RTT ago).
E2E_DELAY_S = 0.1


@dataclass
class _Blockage:
    """A scripted channel collapse: -15 dB between start and stop."""

    start_s: float
    stop_s: float
    loss_db: float = 15.0
    slot_duration_s: float = TTI_DURATION_S[30]

    def __post_init__(self) -> None:
        self._elapsed = 0.0

    def step(self, slot_index: int) -> float:
        self._elapsed += self.slot_duration_s
        if self.start_s <= self._elapsed < self.stop_s:
            return -self.loss_db
        return 0.0

    @property
    def name(self) -> str:
        return "scripted-blockage"


@dataclass
class SenderTrace:
    """One sender's control trajectory."""

    name: str
    times: list[float] = field(default_factory=list)
    offered_bps: list[float] = field(default_factory=list)
    delivered_bps: list[float] = field(default_factory=list)
    backlog_bytes: list[int] = field(default_factory=list)

    def utilisation(self, capacity_series: list[float]) -> float:
        """Mean delivered rate over the session."""
        if not self.delivered_bps:
            return 0.0
        return float(np.mean(self.delivered_bps))

    @property
    def peak_backlog_bytes(self) -> int:
        """Worst queue build-up (the bufferbloat the paper warns of)."""
        return max(self.backlog_bytes) if self.backlog_bytes else 0


def _run_sender(ran_aware: bool, duration_s: float,
                seed: int) -> SenderTrace:
    """One closed-loop session with the chosen feedback source."""
    sim = Simulation.build(MOSOLAB_PROFILE, n_ues=0, seed=seed,
                           olla_target_bler=0.1)
    slot_s = MOSOLAB_PROFILE.slot_duration_s
    source = ControlledRate(slot_duration_s=slot_s,
                            initial_rate_bps=2e6)
    from repro.ue.ue import UserEquipment
    ue = UserEquipment(
        ue_id=0,
        dl_buffer=TrafficBuffer(source),
        ul_buffer=TrafficBuffer(PoissonPackets(
            packets_per_second=20, packet_bytes=200,
            slot_duration_s=slot_s, seed=seed)),
        channel=FadingChannel("pedestrian", 24.0, slot_s, seed=seed),
        mobility=_Blockage(start_s=duration_s / 3,
                           stop_s=2 * duration_s / 3,
                           slot_duration_s=slot_s))
    sim.gnb.add_ue(ue)
    scope = NRScope.attach(sim, snr_db=18.0, window_s=CONTROL_S)

    trace = SenderTrace(name="ran-aware" if ran_aware else "e2e-aimd")
    # (time, delivered rate, offered rate at that time) history; the
    # e2e sender only sees entries older than the feedback delay.
    history: list[tuple[float, float, float]] = []
    last_delivered_bits = 0
    rate = 2e6
    while sim.now_s < duration_s:
        sim.run(seconds=CONTROL_S)
        now = sim.now_s
        delivered = ue.delivered_dl_bits
        delivered_rate = (delivered - last_delivered_bits) / CONTROL_S
        last_delivered_bits = delivered
        history.append((now, delivered_rate, rate))

        if ran_aware and scope.tracked_rntis:
            rnti = scope.tracked_rntis[0]
            used = scope.throughput.rate_bps(rnti, now)
            spare_series = scope.spare.spare_rate_series(rnti, slot_s)
            recent = [v for t, v in spare_series if t >= now - CONTROL_S]
            spare = float(np.mean(recent)) if recent else 0.0
            rate = max(2e5, used + 0.7 * spare)
        else:
            # AIMD on delayed delivery reports: the sender compares the
            # delivery rate against what it was *offering at that time*
            # (one feedback delay ago).
            report_time = now - E2E_DELAY_S
            past = [(r, offered) for t, r, offered in history
                    if t <= report_time]
            if past:
                known_delivered, offered_then = past[-1]
                if known_delivered >= 0.85 * offered_then:
                    rate += 4e5            # additive increase
                else:
                    rate = max(2e5, 0.6 * rate)  # multiplicative back-off
        source.set_rate(rate)
        trace.times.append(now)
        trace.offered_bps.append(rate)
        trace.delivered_bps.append(delivered_rate)
        trace.backlog_bytes.append(ue.dl_buffer.backlog_bytes)
    return trace


def run(duration_s: float = 6.0, seed: int = 23) \
        -> tuple[SenderTrace, SenderTrace]:
    """Both senders over the identical scripted channel."""
    ran_aware = _run_sender(True, duration_s, seed)
    baseline = _run_sender(False, duration_s, seed)
    return ran_aware, baseline


def to_result(ran_aware: SenderTrace,
              baseline: SenderTrace) -> FigureResult:
    result = FigureResult(figure="ext-congestion")
    result.add_series("ran-aware-offered",
                      list(zip(ran_aware.times, ran_aware.offered_bps)))
    result.add_series("e2e-offered",
                      list(zip(baseline.times, baseline.offered_bps)))
    result.summary["ran_aware_goodput_mbps"] = \
        float(np.mean(ran_aware.delivered_bps)) / 1e6
    result.summary["e2e_goodput_mbps"] = \
        float(np.mean(baseline.delivered_bps)) / 1e6
    result.summary["ran_aware_peak_backlog_kb"] = \
        ran_aware.peak_backlog_bytes / 1e3
    result.summary["e2e_peak_backlog_kb"] = \
        baseline.peak_backlog_bytes / 1e3
    return result


def table(ran_aware: SenderTrace, baseline: SenderTrace) -> Table:
    rows = []
    for trace in (ran_aware, baseline):
        rows.append((trace.name,
                     float(np.mean(trace.delivered_bps)) / 1e6,
                     float(np.mean(trace.offered_bps)) / 1e6,
                     trace.peak_backlog_bytes / 1e3))
    return Table(
        title="EXT - RAN-aware vs end-to-end congestion control",
        columns=("sender", "goodput Mbps", "offered Mbps",
                 "peak queue kB"),
        rows=tuple(rows))
