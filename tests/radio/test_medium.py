"""Tests for the radio medium: path loss and link budgets."""

import numpy as np
import pytest

from repro.radio.medium import (
    Link,
    MediumError,
    PathLossModel,
    Position,
    RadioMedium,
    lab_medium,
)


class TestPosition:
    def test_distance(self):
        assert Position(0, 0).distance_to(Position(3, 4)) == 5.0


class TestPathLoss:
    def test_increases_with_distance(self):
        model = PathLossModel(shadowing_sigma_db=0.0)
        losses = [model.path_loss_db(d) for d in (1, 10, 100, 1000)]
        assert losses == sorted(losses)
        # Log-distance: each decade adds 10*n dB.
        assert losses[1] - losses[0] == pytest.approx(29.0)

    def test_shadowing_adds_variance(self, rng):
        model = PathLossModel(shadowing_sigma_db=6.0)
        draws = [model.path_loss_db(100.0, rng) for _ in range(500)]
        assert np.std(draws) == pytest.approx(6.0, rel=0.2)

    def test_rejects_nonpositive_distance(self):
        with pytest.raises(MediumError):
            PathLossModel().path_loss_db(0.0)


class TestRadioMedium:
    def test_snr_decreases_with_distance(self):
        medium = RadioMedium(gnb_position=Position(0, 0),
                             path_loss=PathLossModel(shadowing_sigma_db=0))
        near = medium.snr_at(Position(5, 0))
        far = medium.snr_at(Position(500, 0))
        assert near > far

    def test_snr_capped(self):
        medium = RadioMedium(gnb_position=Position(0, 0), max_snr_db=40.0,
                             path_loss=PathLossModel(shadowing_sigma_db=0))
        assert medium.snr_at(Position(0.01, 0)) <= 40.0

    def test_shadowing_stable_per_position(self):
        medium = RadioMedium(gnb_position=Position(0, 0), seed=7)
        spot = Position(120.0, 40.0)
        assert medium.snr_at(spot) == medium.snr_at(spot)

    def test_link_noise_variance(self):
        link = Link(snr_db=10.0)
        assert link.noise_variance() == pytest.approx(0.1)

    def test_paper_distances_remain_workable(self):
        """The T-Mobile evaluation decodes at 350 m and 1460 m (Fig 6).

        Operational cells transmit ~20 dB hotter than the lab default;
        with that budget both distances must stay above the PDCCH decode
        floor (~0 dB at AL 8) at 350 m and be clearly weaker at 1460 m.
        """
        medium = RadioMedium(gnb_position=Position(0, 0),
                             tx_power_dbm=49.0, antenna_gain_db=14.0,
                             path_loss=PathLossModel(shadowing_sigma_db=0))
        near = medium.snr_at(Position(350.0, 0))
        far = medium.snr_at(Position(1460.0, 0))
        assert near > 5.0
        assert far < near


class TestLabMedium:
    def test_default_bench_snr(self):
        medium = lab_medium(snr_db=25.0)
        assert medium.snr_at(Position(1.0, 0.0)) == pytest.approx(25.0)

    def test_configurable(self):
        medium = lab_medium(snr_db=10.0)
        assert medium.snr_at(Position(1.0, 0.0)) == pytest.approx(10.0)
