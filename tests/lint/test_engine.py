"""Engine, baseline and output-format tests for nrlint."""

import json
from pathlib import Path

import pytest

from repro.lint import Baseline, Finding, LintEngine
from repro.lint.baseline import BaselineError
from repro.lint.registry import RuleError, iter_rules

REPO_SRC = Path(__file__).resolve().parents[2] / "src" / "repro"


class TestEngine:
    def test_repo_is_clean(self, engine):
        """The headline acceptance check: the shipped tree has no
        unfixed violations (the committed baseline is empty)."""
        findings = engine.run([REPO_SRC])
        assert findings == [], "\n".join(f.render() for f in findings)

    def test_fixture_tree_violates_every_rule(self, engine, fixtures_dir):
        findings = engine.run([fixtures_dir])
        seen = {f.rule_id for f in findings}
        assert {"R001", "R002", "R003", "R004",
                "R005", "R006", "R007", "R008"} <= seen

    def test_findings_independent_of_file_order(self, engine, fixtures_dir):
        """Flow-aware rules see the whole program: linting the tree must
        produce the same findings regardless of collection order."""
        files = sorted(p for p in fixtures_dir.rglob("*.py"))
        forward = engine.run(files)
        backward = engine.run(list(reversed(files)))
        as_keys = lambda fs: sorted(  # noqa: E731
            (f.rule_id, f.rel, f.line, f.message) for f in fs)
        assert as_keys(forward) == as_keys(backward)
        assert forward  # the comparison is not vacuous

    def test_rule_crash_becomes_lint_error(self, fixtures_dir):
        from repro.lint.engine import LintError
        from repro.lint.registry import Rule

        class Exploding(Rule):
            rule_id = "R999"
            title = "boom"

            def check(self, ctx):
                raise ValueError("internal inconsistency")

        engine = LintEngine(rules=[Exploding()])
        with pytest.raises(LintError, match="R999 crashed"):
            engine.run([fixtures_dir])

    def test_rel_normalisation_strips_src_repro(self, engine, tmp_path):
        tree = tmp_path / "src" / "repro" / "gnb"
        tree.mkdir(parents=True)
        (tree / "mod.py").write_text("import random\nrandom.random()\n")
        findings = engine.run([tmp_path])
        assert findings and findings[0].rel == "gnb/mod.py"

    def test_single_file_target_keeps_package_scope(self, engine,
                                                     fixtures_dir):
        """Linting one file by path must scope like linting the tree:
        the ``phy/`` prefix R003 needs is recovered from the absolute
        path, not lost to the basename."""
        findings = engine.run([fixtures_dir / "phy" / "bad_float.py"])
        assert "R003" in {f.rule_id for f in findings}

    def test_subdirectory_target_keeps_package_scope(self, engine):
        from repro.lint.engine import _iter_python_files
        findings = engine.run([REPO_SRC / "phy"])
        assert findings == []  # scoped correctly AND clean
        rels = [rel for _, rel in _iter_python_files(REPO_SRC / "phy")]
        assert rels and all(rel.startswith("phy/") for rel in rels)

    def test_syntax_error_reported_not_raised(self, engine, tmp_path):
        bad = tmp_path / "broken.py"
        bad.write_text("def f(:\n")
        findings = engine.run([tmp_path])
        assert findings[0].rule_id == "E000"

    def test_skips_cache_dirs_and_own_package(self, engine, tmp_path):
        cache = tmp_path / "__pycache__"
        cache.mkdir()
        (cache / "junk.py").write_text("x = 1024 % 1024\n")
        lint_pkg = tmp_path / "lint"
        lint_pkg.mkdir()
        (lint_pkg / "rules.py").write_text("MAGIC = {65535}\nx = 65535\n")
        assert engine.run([tmp_path]) == []

    def test_missing_path_raises(self, engine, tmp_path):
        from repro.lint.engine import LintError
        with pytest.raises(LintError):
            engine.run([tmp_path / "nope"])

    def test_unknown_rule_selection_fails_loudly(self):
        with pytest.raises(RuleError):
            iter_rules(["R999"])

    def test_selection_restricts_rules(self, fixtures_dir):
        engine = LintEngine(rules=iter_rules(["R004"]))
        findings = engine.run([fixtures_dir])
        assert findings and {f.rule_id for f in findings} == {"R004"}


class TestBaseline:
    def _finding(self, rel="gnb/mod.py", line=3,
                 snippet="return sfn % 1024"):
        return Finding(rule_id="R004", message="m", path=rel, rel=rel,
                       line=line, col=0, snippet=snippet)

    def test_roundtrip_and_suppression(self, tmp_path):
        finding = self._finding()
        baseline = Baseline.from_findings([finding])
        path = tmp_path / "baseline.json"
        baseline.save(path)
        loaded = Baseline.load(path)
        fresh, suppressed = loaded.filter([finding])
        assert fresh == [] and suppressed == [finding]

    def test_line_number_drift_still_matches(self, tmp_path):
        baseline = Baseline.from_findings([self._finding(line=3)])
        fresh, suppressed = baseline.filter([self._finding(line=300)])
        assert fresh == [] and len(suppressed) == 1

    def test_count_budget_is_enforced(self):
        baseline = Baseline.from_findings([self._finding()])
        fresh, suppressed = baseline.filter(
            [self._finding(), self._finding()])
        assert len(fresh) == 1 and len(suppressed) == 1

    def test_new_finding_not_suppressed(self):
        baseline = Baseline.from_findings([self._finding()])
        other = self._finding(snippet="return slot % 20")
        fresh, _ = baseline.filter([other])
        assert fresh == [other]

    def test_malformed_baseline_raises(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text("{not json")
        with pytest.raises(BaselineError):
            Baseline.load(path)
        path.write_text(json.dumps({"entries": [{"rule": "R001"}]}))
        with pytest.raises(BaselineError):
            Baseline.load(path)

    def test_saved_file_carries_justification_slot(self, tmp_path):
        path = tmp_path / "baseline.json"
        Baseline.from_findings([self._finding()]).save(path)
        entry = json.loads(path.read_text())["entries"][0]
        assert entry["rule"] == "R004"
        assert entry["path"] == "gnb/mod.py"
        assert "justification" in entry

    def test_unmatched_reports_orphaned_entries(self):
        baseline = Baseline.from_findings([self._finding()])
        orphans = baseline.unmatched([])
        assert len(orphans) == 1 and orphans[0][0] == "R004"

    def test_unmatched_ignores_unscanned_files(self):
        """An entry for a file outside the scan scope is not an orphan —
        a ``--changed`` run must not flag the rest of the baseline."""
        baseline = Baseline.from_findings([self._finding()])
        assert baseline.unmatched([], scanned_rels={"phy/other.py"}) == []

    def test_prune_drops_unused_budget(self):
        used = self._finding()
        stale = self._finding(rel="gnb/gone.py")
        baseline = Baseline.from_findings([used, used, stale])
        pruned = baseline.prune([used])
        assert pruned == 2  # one surplus count + one whole stale entry
        fresh, suppressed = baseline.filter([used])
        assert fresh == [] and suppressed == [used]
        assert baseline.unmatched([used]) == []

    def test_committed_baseline_is_valid(self):
        committed = Path(__file__).resolve().parents[2] \
            / "lint-baseline.json"
        baseline = Baseline.load(committed)
        assert sum(baseline.entries.values()) == 0
