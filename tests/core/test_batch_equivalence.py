"""decode_slot_batch is a drop-in for decode_slot, bit for bit.

The batched decoder reorders work (gather waves, joint polar decodes,
batch CRC) but must reproduce the scalar path's *decisions* exactly:
same decoded DCIs in the same order, same attempt count, same claimed
CCEs — under every ablation toggle and under noise.  The slim process
wire forms (control-region grid slice + content-addressed search-space
blob) must likewise be invisible to the decode.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.dci_decoder import GridDciDecoder, _SPACES_CACHE, \
    _tracked_from_blob, _ue_entry_plan, grid_decode_job, \
    pack_grid_for_decode, pack_tracked_for_decode, unpack_grid_for_decode
from repro.core.rach_sniffer import RachSniffer
from repro.core.runtime import sharded_grid_decode
from repro.gnb.cell_config import SRSRAN_PROFILE
from repro.phy.dci import Dci, DciFormat, riv_encode
from repro.phy.pdcch import PdcchCandidate, encode_pdcch
from repro.phy.resource_grid import ResourceGrid
from repro.rrc.messages import RrcSetup


def build_tracked(n_ues=3):
    sniffer = RachSniffer(bwp_n_prb=51)
    setup = RrcSetup(tc_rnti=0x4601,
                     search_space=SRSRAN_PROFILE.search_space_config())
    sniffer.discover(0x4601, 0.0, setup)
    for i in range(1, n_ues):
        sniffer.discover(0x4601 + i, 0.0, None)
    return sniffer.tracked


def build_slot(tracked, slot_index, level=2, noise_var=0.0, seed=0):
    """One real DCI per UE plus optional AWGN over the whole grid."""
    grid = ResourceGrid(SRSRAN_PROFILE.n_prb)
    cfg = SRSRAN_PROFILE.dci_size_config()
    used = set()
    for rnti, ue in tracked.items():
        space = ue.search_space
        for start in space.candidate_cces(level, slot_index, rnti):
            cces = set(range(start, start + level))
            if cces & used:
                continue
            dci = Dci(format=DciFormat.DL_1_1, rnti=rnti,
                      freq_alloc_riv=riv_encode(0, 4, 51), time_alloc=1,
                      mcs=10, ndi=0, rv=0, harq_id=0)
            encode_pdcch(dci, cfg, space.coreset,
                         PdcchCandidate(start, level), grid,
                         n_id=SRSRAN_PROFILE.cell_id,
                         slot_index=slot_index)
            used |= cces
            break
    if noise_var > 0.0:
        rng = np.random.default_rng(seed)
        scale = np.sqrt(noise_var / 2.0)
        grid.data += (rng.normal(0.0, scale, grid.data.shape)
                      + 1j * rng.normal(0.0, scale, grid.data.shape))
    return grid


def make_decoder(noise_var=1e-3, **kwargs):
    return GridDciDecoder(dci_cfg=SRSRAN_PROFILE.dci_size_config(),
                          n_id=SRSRAN_PROFILE.cell_id,
                          noise_var=noise_var, **kwargs)


class TestBatchMatchesScalar:
    @given(st.data())
    @settings(max_examples=15, deadline=None)
    def test_full_equivalence(self, data):
        n_ues = data.draw(st.integers(min_value=1, max_value=5))
        slot_index = data.draw(st.integers(min_value=0, max_value=19))
        level = data.draw(st.sampled_from([1, 2, 4]))
        noise_var = data.draw(st.sampled_from([0.0, 1e-3, 0.05]))
        gate = data.draw(st.booleans())
        claim = data.draw(st.booleans())
        seed = data.draw(st.integers(min_value=0, max_value=999))

        tracked = build_tracked(n_ues)
        grid = build_slot(tracked, slot_index, level=level,
                          noise_var=noise_var, seed=seed)
        kwargs = dict(noise_var=max(noise_var, 1e-3),
                      use_energy_gate=gate, use_cce_claiming=claim)
        scalar = make_decoder(**kwargs)
        batched = make_decoder(**kwargs)
        claimed_s: set = set()
        claimed_b: set = set()
        out_s = scalar.decode_slot(grid, slot_index, tracked,
                                   claimed=claimed_s)
        out_b = batched.decode_slot_batch(grid, slot_index, tracked,
                                          claimed=claimed_b)
        assert out_b == out_s
        assert batched.attempts == scalar.attempts
        assert claimed_b == claimed_s

    def test_equalize_path_matches(self):
        tracked = build_tracked(3)
        grid = build_slot(tracked, slot_index=4, noise_var=1e-3, seed=1)
        grid.data *= 0.8 * np.exp(1j * 0.3)
        scalar = make_decoder(equalize=True)
        batched = make_decoder(equalize=True)
        out_s = scalar.decode_slot(grid, 4, tracked)
        out_b = batched.decode_slot_batch(grid, 4, tracked)
        assert out_b == out_s
        assert len(out_s) == 3

    def test_entry_plan_is_cached_across_slots(self):
        tracked = build_tracked(2)
        grid = build_slot(tracked, slot_index=4)
        decoder = make_decoder()
        decoder.decode_slot_batch(grid, 4, tracked)
        before = _ue_entry_plan.cache_info().hits
        decoder.decode_slot_batch(grid, 4, tracked)
        # One hit per (space, rnti) entry: the whole phase-1 candidate
        # enumeration collapses to a memoized lookup on repeat slots.
        assert _ue_entry_plan.cache_info().hits >= before + len(tracked)


class TestSlimWireForms:
    def test_grid_roundtrip_preserves_control_region(self):
        tracked = build_tracked(3)
        grid = build_slot(tracked, slot_index=4, noise_var=1e-3, seed=2)
        packed = pack_grid_for_decode(grid, tracked)
        n_sym = packed["n_control_symbols"]
        assert 0 < n_sym < grid.data.shape[1]
        rebuilt = unpack_grid_for_decode(packed)
        assert rebuilt.n_prb == grid.n_prb
        assert np.array_equal(rebuilt.data[:, :n_sym],
                              grid.data[:, :n_sym])
        assert np.array_equal(rebuilt.occupancy[:, :n_sym],
                              grid.occupancy[:, :n_sym])
        assert not rebuilt.data[:, n_sym:].any()

    @pytest.mark.parametrize("batch", [False, True])
    def test_slim_job_matches_inline_decode(self, batch):
        tracked = build_tracked(4)
        grid = build_slot(tracked, slot_index=7, noise_var=1e-3, seed=3)
        inline = sharded_grid_decode(make_decoder(), grid, 7, tracked, 2,
                                     batch=batch)
        payload = {
            "grid": pack_grid_for_decode(grid, tracked),
            "tracked": pack_tracked_for_decode(tracked),
            "slot_index": 7, "n_shards": 2, "batch": batch,
            "dci_cfg": SRSRAN_PROFILE.dci_size_config(),
            "n_id": SRSRAN_PROFILE.cell_id, "noise_var": 1e-3,
            "use_energy_gate": True, "use_cce_claiming": True,
            "equalize": False,
        }
        decoded, attempts = grid_decode_job(payload)
        assert decoded == inline
        assert attempts > 0

    def test_tracked_blob_is_content_addressed(self):
        tracked = build_tracked(3)
        blob_a = pack_tracked_for_decode(tracked)
        blob_b = pack_tracked_for_decode(dict(reversed(tracked.items())))
        # Same table contents -> same blob (packing sorts by RNTI), and
        # the lru means the steady-state pack is one hash lookup.
        assert blob_a == blob_b
        table_a = _tracked_from_blob(blob_a)
        assert table_a is _tracked_from_blob(blob_a)
        assert sorted(table_a) == sorted(tracked)
        for rnti, ue in table_a.items():
            assert ue.search_space == tracked[rnti].search_space
        assert blob_a in _SPACES_CACHE

    def test_blob_changes_when_a_ue_joins(self):
        small = build_tracked(2)
        large = build_tracked(3)
        assert pack_tracked_for_decode(small) \
            != pack_tracked_for_decode(large)
