"""Tests for the session report generator."""

import pytest

from repro import NRScope, Simulation, SRSRAN_PROFILE
from repro.analysis.summary import SummaryError, build_session_report


@pytest.fixture(scope="module")
def session():
    sim = Simulation.build(SRSRAN_PROFILE, n_ues=3, seed=83)
    scope = NRScope.attach(sim, snr_db=20.0)
    sim.run(seconds=1.0)
    return sim, scope


class TestBuild:
    def test_cell_aggregates(self, session):
        sim, scope = session
        report = build_session_report(scope, 1.0)
        assert report.cell.duration_s == 1.0
        assert report.cell.slots_observed == 2000
        assert report.cell.ues_discovered == 3
        assert report.cell.dcis_decoded == \
            scope.counters.dcis_decoded
        assert 0.0 < report.cell.mean_prb_utilisation <= 1.0

    def test_per_ue_rows(self, session):
        sim, scope = session
        report = build_session_report(scope, 1.0)
        assert len(report.ues) == 3
        # Sorted by DL rate, highest first.
        rates = [u.dl_mbps for u in report.ues]
        assert rates == sorted(rates, reverse=True)
        for ue in report.ues:
            assert ue.dl_mbps > 0
            assert 0 <= ue.retx_ratio <= 1
            assert ue.n_dcis > 0
            assert 0 <= ue.active_time_s <= 1.0

    def test_aggregate_consistent_with_rows(self, session):
        sim, scope = session
        report = build_session_report(scope, 1.0)
        # UL DCIs belong to the same RNTIs, so cell aggregate (DL) must
        # equal the sum of the per-UE DL rates.
        assert report.cell.aggregate_dl_mbps == pytest.approx(
            sum(u.dl_mbps for u in report.ues), rel=1e-9)

    def test_render_contains_everything(self, session):
        sim, scope = session
        text = build_session_report(scope, 1.0).render()
        assert "Telemetry session" in text
        assert "Per-UE telemetry" in text
        for rnti in scope.telemetry.rntis():
            assert f"0x{rnti:04x}" in text

    def test_render_includes_runtime_stages(self, session):
        sim, scope = session
        report = build_session_report(scope, 1.0)
        assert report.runtime is not None
        assert report.runtime.slots_submitted == 2000
        text = report.render()
        assert "Runtime stages [inline]" in text
        for stage in ("sync", "dci", "sinks"):
            assert stage in text

    def test_render_without_runtime(self, session):
        sim, scope = session
        report = build_session_report(scope, 1.0)
        bare = type(report)(cell=report.cell, ues=report.ues)
        assert "Runtime stages" not in bare.render()

    def test_bad_duration(self, session):
        _, scope = session
        with pytest.raises(SummaryError):
            build_session_report(scope, 0.0)

    def test_empty_session(self):
        sim = Simulation.build(SRSRAN_PROFILE, n_ues=0, seed=1)
        scope = NRScope.attach(sim, snr_db=20.0)
        sim.run(seconds=0.05)
        report = build_session_report(scope, 0.05)
        assert report.ues == []
        assert report.cell.aggregate_dl_mbps == 0.0
        assert report.render()
