"""Fig 8: CCDF of per-TTI REG-count errors (paper section 5.2.1).

The paper compares the REGs NR-Scope decoded within each TTI against
srsRAN's log: average error 0.77 REGs, and over 99% of TTIs exactly
zero.  Errors appear when a DCI is missed (the whole grant's REGs go
uncounted).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.matching import per_tti_reg_errors
from repro.analysis.metrics import ccdf_points
from repro.analysis.report import Table
from repro.experiments.common import FigureResult, run_session
from repro.gnb.cell_config import AMARISOFT_PROFILE, SRSRAN_PROFILE

SRSRAN_UE_COUNTS = (1, 2, 3, 4)
AMARISOFT_UE_COUNTS = (8, 16, 32, 64)


@dataclass(frozen=True)
class RegErrorSeries:
    """One CCDF line of Fig 8."""

    network: str
    n_ues: int
    errors: tuple[int, ...]

    @property
    def mean_error(self) -> float:
        return float(np.mean(self.errors)) if self.errors else 0.0

    @property
    def zero_fraction(self) -> float:
        if not self.errors:
            return 1.0
        return float(np.mean(np.array(self.errors) == 0))

    def ccdf(self) -> list[tuple[float, float]]:
        return ccdf_points([float(e) for e in self.errors])


def measure_reg_errors(profile, n_ues: int, duration_s: float,
                       seed: int) -> RegErrorSeries:
    """Per-TTI REG error distribution for one session."""
    result = run_session(profile, n_ues=n_ues, duration_s=duration_s,
                         seed=seed, channel="pedestrian")
    errors = per_tti_reg_errors(result.ue_truth_records(downlink=True),
                                result.telemetry.records, downlink=True)
    return RegErrorSeries(network=profile.name, n_ues=n_ues,
                          errors=tuple(errors))


def run(duration_s: float = 4.0, seed: int = 8) \
        -> tuple[list[RegErrorSeries], list[RegErrorSeries]]:
    """Both subfigures: (srsRAN series, Amarisoft series)."""
    srsran = [measure_reg_errors(SRSRAN_PROFILE, n, duration_s, seed + n)
              for n in SRSRAN_UE_COUNTS]
    amarisoft = [measure_reg_errors(AMARISOFT_PROFILE, n,
                                    max(duration_s / 2, 1.0), seed + n)
                 for n in AMARISOFT_UE_COUNTS]
    return srsran, amarisoft


def to_result(srsran: list[RegErrorSeries],
              amarisoft: list[RegErrorSeries]) -> FigureResult:
    result = FigureResult(figure="fig8")
    all_errors: list[float] = []
    for series in srsran + amarisoft:
        result.add_series(f"{series.network}-{series.n_ues}ue",
                          series.ccdf())
        all_errors.extend(float(e) for e in series.errors)
    arr = np.asarray(all_errors)
    result.summary["mean_reg_error"] = float(arr.mean())
    result.summary["zero_fraction"] = float((arr == 0).mean())
    return result


def table(series: list[RegErrorSeries], title: str) -> Table:
    return Table(
        title=title,
        columns=("UEs", "mean REG err", "P(err=0) %", "max err", "TTIs"),
        rows=tuple((s.n_ues, s.mean_error, 100 * s.zero_fraction,
                    max(s.errors) if s.errors else 0, len(s.errors))
                   for s in series))
