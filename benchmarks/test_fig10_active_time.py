"""Fig 10: UE active time in commercial T-Mobile cells.

Paper result: 400-600 distinct UEs per 10 minutes in cell 1, 100-200 in
cell 2; 90% of UEs stay in the RAN for less than 35 seconds.
"""

from repro.analysis.report import print_tables, series_table
from repro.experiments import fig10_active_time as fig10


def test_fig10_ue_active_time(benchmark):
    series = benchmark(fig10.run)
    result = fig10.to_result(series)
    print()
    print_tables([
        fig10.table(series),
        series_table("Fig 10 CCDF (afternoon, cell 1)",
                     next(s for s in series
                          if s.cell == 1
                          and s.time_of_day == "afternoon").ccdf(),
                     "active time s", "CCDF", max_rows=10),
    ])
    print("summary:", {k: round(v, 3) for k, v in result.summary.items()})

    # Shape: the paper's come-and-go pattern.
    assert 0.85 <= result.summary["fraction_under_35s"] <= 0.95
    assert 25.0 <= result.summary["p90_holding_s"] <= 45.0
    assert 350 <= result.summary["cell1_distinct_min"]
    assert result.summary["cell1_distinct_max"] <= 700
    assert 80 <= result.summary["cell2_distinct_min"]
    assert result.summary["cell2_distinct_max"] <= 250
    # Cell 1 is the busier cell at every time of day.
    cell1 = {s.time_of_day: s.distinct_ues for s in series if s.cell == 1}
    cell2 = {s.time_of_day: s.distinct_ues for s in series if s.cell == 2}
    for time_of_day in cell1:
        assert cell1[time_of_day] > cell2[time_of_day]
