"""Wire-payload escape analysis for the process-executor boundary.

A ``ProcessExecutor`` run pickles a ``(job, payload)`` pair per slot
(built by a stage's ``pack=`` callable) into a worker and pickles the
job's return value back.  That boundary has contracts nothing at
runtime checks:

* the payload must not capture **mutable shared state** — the live
  tracked-UE table, a stateful ``numpy.random.Generator``, an
  ``ObsContext``/reporter, an open file.  Pickling them "works" (or
  crashes late, in the worker) but silently forks state the backbone
  keeps mutating: the decode becomes a race against the snapshot
  instant instead of the slot-ordered value the inline path computes;
* it must not capture **unpicklable values** (lambdas, generators,
  locks, threads) — a spawn-context crash that only reproduces under
  ``--executor process:N``, never inline or threaded.

This module finds the boundary statically from the PR 3 call graph:
every ``Stage(..., pack=...)`` site names a *pack root*; each pack
root's ``return job, payload`` names a *job root*; the payload's
fields (dict keys, or the bare expression) and each job root's return
tuple elements are then classified by a conservative escape walk —
name patterns (``tracked``/``rng``/``obs`` segments), statically
inferred receiver types against a per-class unsafety table (classes
whose ``__init__`` builds locks, threads, RNGs or open files), and
syntactic unpicklables.  Projections through ``pack_*`` helpers and
pure builtins (``frozenset``, ``tuple``, ``sorted``, ...) are the
sanctioned way to narrow shared state onto the wire, so their direct
arguments are exempt from the tracked-table pattern (a ``pack_*``
helper exists precisely to snapshot it) while still being checked for
RNG/obs capture.  Rule R009 turns the escapes into findings.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from repro.lint.astutil import dotted_name
from repro.lint.callgraph import CallGraph, FunctionNode, TypeRef

#: Constructor leaves that make a class wire-unsafe when assigned to an
#: attribute in ``__init__`` (or any method): pickling an instance
#: either fails (locks, threads) or forks state (RNGs, files).
_UNSAFE_CTORS: dict[str, str] = {
    "Lock": "lock", "RLock": "lock", "Condition": "lock",
    "Event": "lock", "Semaphore": "lock", "BoundedSemaphore": "lock",
    "Barrier": "lock", "Thread": "thread", "Queue": "queue",
    "SimpleQueue": "queue", "LifoQueue": "queue",
    "default_rng": "rng", "Generator": "rng", "RandomState": "rng",
    "open": "file",
}

#: Call leaves whose result is an immutable scalar: nothing of the
#: argument crosses the wire, whatever it was.
_SCALAR_COERCIONS = frozenset((
    "len", "min", "max", "sum", "bool", "int", "float", "str",
    "bytes", "repr", "abs", "round",
))

#: Call leaves sanctioned to project shared state onto the wire: the
#: ``pack_*`` convention plus shallow-copying builtins.  Their direct
#: arguments are exempt from the tracked-table pattern (projecting it
#: is the point) but still checked for RNG/obs capture — a
#: ``tuple(reporters)`` still ships the reporters.
_CONTAINER_PROJECTIONS = frozenset((
    "frozenset", "tuple", "sorted", "list", "dict", "set",
))

#: Mapping accessors whose result aliases the receiver's contents, so
#: the receiver effectively crosses with the result
#: (``tracked.values()`` ships every live TrackedUe).
_ALIASING_METHODS = frozenset(("values", "items", "keys", "get",
                               "copy"))

#: Syntactically unpicklable expression forms.
_UNPICKLABLE_NODES = (ast.Lambda, ast.GeneratorExp)

_MAX_DEPTH = 8


@dataclass(frozen=True)
class WireEscape:
    """One contract violation found in a wire-crossing expression."""

    reason: str     #: ``tracked`` | ``rng`` | ``obs`` | ``unpicklable``
                    #: | ``file`` | ``unsafe-instance``
    detail: str
    lineno: int
    col: int


@dataclass
class PayloadField:
    """One field of a payload dict / job-result tuple."""

    key: str
    lineno: int
    escapes: list[WireEscape] = field(default_factory=list)


@dataclass
class WireRoot:
    """A function whose inputs or outputs cross the pickle boundary."""

    qualname: str
    rel: str
    lineno: int
    role: str       #: ``pack`` (builds payloads) | ``job`` (returns
                    #: results)
    fields: list[PayloadField] = field(default_factory=list)

    @property
    def escapes(self) -> list[WireEscape]:
        return [e for f in self.fields for e in f.escapes]


def _attr_chain(expr: ast.expr) -> list[str]:
    """``a.b.c`` -> ``["a", "b", "c"]``; empty for anything else."""
    name = dotted_name(expr)
    return name.split(".") if name is not None else []


def _segment_escape(segment: str, node: ast.AST,
                    suppress_tracked: bool) -> WireEscape | None:
    """Name-pattern classification of one receiver/attribute segment."""
    lowered = segment.lower()
    lineno = getattr(node, "lineno", 0)
    col = getattr(node, "col_offset", 0)
    if not suppress_tracked and (lowered == "tracked"
                                 or lowered.endswith("tracked")):
        return WireEscape(
            reason="tracked", lineno=lineno, col=col,
            detail=f"'{segment}' ships the live tracked-UE table; "
                   f"project it first (pack_tracked_for_decode, "
                   f"frozenset(tracked), ...) so the worker cannot "
                   f"race the backbone's mutations")
    if "rng" in lowered:
        return WireEscape(
            reason="rng", lineno=lineno, col=col,
            detail=f"'{segment}' ships RNG state across the process "
                   f"boundary — the worker's draws fork from the "
                   f"backbone's stream; ship the seed/counter key "
                   f"instead")
    if "obs" in lowered or lowered == "reporter" \
            or lowered.endswith("reporters"):
        return WireEscape(
            reason="obs", lineno=lineno, col=col,
            detail=f"'{segment}' ships an observability handle; "
                   f"events must ride the job result (collect flags) "
                   f"and replay at commit, not emit from the worker")
    return None


class WireAnalysis:
    """Escape analysis of every pickle-crossing payload in a scan."""

    def __init__(self, graph: CallGraph) -> None:
        self.graph = graph
        #: class name -> (reason, attr) explaining why instances of the
        #: class must not cross the wire.
        self.unsafe_classes: dict[str, tuple[str, str]] = {}
        self.roots: list[WireRoot] = []
        self._build_unsafe_classes()
        self._find_roots()

    # ------------------------------------------------- unsafety table
    def _build_unsafe_classes(self) -> None:
        for module in self.graph.modules.values():
            for klass in module.classes.values():
                for method in klass.methods.values():
                    for node in ast.walk(method.node):
                        if not (isinstance(node, ast.Assign)
                                and len(node.targets) == 1):
                            continue
                        target = node.targets[0]
                        if not (isinstance(target, ast.Attribute)
                                and isinstance(target.value, ast.Name)
                                and target.value.id == "self"
                                and isinstance(node.value, ast.Call)):
                            continue
                        leaf_name = dotted_name(node.value.func)
                        if leaf_name is None:
                            continue
                        reason = _UNSAFE_CTORS.get(
                            leaf_name.split(".")[-1])
                        if reason is not None:
                            self.unsafe_classes.setdefault(
                                klass.name, (reason, target.attr))

    # -------------------------------------------------------- roots
    def _find_roots(self) -> None:
        """Pack roots from ``Stage(..., pack=...)`` sites; job roots
        from each pack root's ``return job, payload``."""
        pack_fns: dict[str, FunctionNode] = {}
        for module in self.graph.modules.values():
            contexts: list[tuple[str | None, ast.AST]] = \
                [(None, module.tree)]
            contexts += [(k.name, k.node)
                         for k in module.classes.values()]
            for klass_name, tree in contexts:
                for node in ast.walk(tree):
                    if not isinstance(node, ast.Call):
                        continue
                    name = dotted_name(node.func)
                    if name is None or name.split(".")[-1] != "Stage":
                        continue
                    for kw in node.keywords:
                        if kw.arg != "pack":
                            continue
                        target = self.graph.resolve_callable_expr(
                            module.rel, kw.value, cls=klass_name)
                        if target is not None:
                            pack_fns.setdefault(target.qualname, target)
        job_fns: dict[str, FunctionNode] = {}
        for pack in sorted(pack_fns.values(), key=lambda f: f.qualname):
            root, jobs = self._analyze_pack(pack)
            self.roots.append(root)
            for job in jobs:
                job_fns.setdefault(job.qualname, job)
        for job in sorted(job_fns.values(), key=lambda f: f.qualname):
            self.roots.append(self._analyze_job(job))

    def _function_assigns(self, function: FunctionNode) \
            -> dict[str, ast.expr]:
        """First-wins map of simple local assignments, for chasing
        ``payload = {...}; return job, payload`` indirection."""
        assigns: dict[str, ast.expr] = {}
        for node in ast.walk(function.node):
            if isinstance(node, ast.Assign) and len(node.targets) == 1 \
                    and isinstance(node.targets[0], ast.Name):
                assigns.setdefault(node.targets[0].id, node.value)
        return assigns

    def _analyze_pack(self, function: FunctionNode) \
            -> tuple[WireRoot, list[FunctionNode]]:
        root = WireRoot(qualname=function.qualname, rel=function.rel,
                        lineno=function.node.lineno, role="pack")
        env = self.graph.type_env(function)
        assigns = self._function_assigns(function)
        jobs: list[FunctionNode] = []
        for node in ast.walk(function.node):
            if not isinstance(node, ast.Return) or node.value is None:
                continue
            value: ast.expr = node.value
            if isinstance(value, ast.Name) and value.id in assigns:
                value = assigns[value.id]
            if isinstance(value, ast.Tuple) and len(value.elts) == 2:
                job_expr, payload = value.elts
                job = self.graph.resolve_callable_expr(
                    function.rel, job_expr, cls=function.cls)
                if job is not None:
                    jobs.append(job)
                self._classify_payload(root, function, payload,
                                       env, assigns)
            else:
                self._classify_payload(root, function, value,
                                       env, assigns)
        return root, jobs

    def _analyze_job(self, function: FunctionNode) -> WireRoot:
        root = WireRoot(qualname=function.qualname, rel=function.rel,
                        lineno=function.node.lineno, role="job")
        env = self.graph.type_env(function)
        assigns = self._function_assigns(function)
        for node in ast.walk(function.node):
            if not isinstance(node, ast.Return) or node.value is None:
                continue
            value = node.value
            if isinstance(value, ast.Tuple):
                for i, element in enumerate(value.elts):
                    fld = PayloadField(key=f"result[{i}]",
                                       lineno=element.lineno)
                    self._classify(element, function, env, assigns,
                                   fld.escapes, False, 0, set())
                    root.fields.append(fld)
            else:
                fld = PayloadField(key="result", lineno=value.lineno)
                self._classify(value, function, env, assigns,
                               fld.escapes, False, 0, set())
                root.fields.append(fld)
        return root

    def _classify_payload(self, root: WireRoot, function: FunctionNode,
                          payload: ast.expr, env: dict[str, TypeRef],
                          assigns: dict[str, ast.expr]) -> None:
        if isinstance(payload, ast.Name) and payload.id in assigns:
            payload = assigns[payload.id]
        if isinstance(payload, ast.Dict):
            for key_node, value in zip(payload.keys, payload.values):
                key = key_node.value \
                    if isinstance(key_node, ast.Constant) \
                    and isinstance(key_node.value, str) \
                    else "<dynamic>"
                fld = PayloadField(key=key, lineno=value.lineno)
                self._classify(value, function, env, assigns,
                               fld.escapes, False, 0, set())
                root.fields.append(fld)
            return
        fld = PayloadField(key="<payload>",
                           lineno=getattr(payload, "lineno",
                                          function.node.lineno))
        self._classify(payload, function, env, assigns,
                       fld.escapes, False, 0, set())
        root.fields.append(fld)

    # -------------------------------------------------- classification
    def _classify(self, expr: ast.expr, function: FunctionNode,
                  env: dict[str, TypeRef],
                  assigns: dict[str, ast.expr],
                  out: list[WireEscape], suppress_tracked: bool,
                  depth: int, visited: set[int]) -> None:
        """Append every escape found under ``expr`` to ``out``."""
        if depth > _MAX_DEPTH or id(expr) in visited:
            return
        visited.add(id(expr))
        if isinstance(expr, _UNPICKLABLE_NODES):
            kind = "lambda" if isinstance(expr, ast.Lambda) \
                else "generator expression"
            out.append(WireEscape(
                reason="unpicklable", lineno=expr.lineno,
                col=expr.col_offset,
                detail=f"a {kind} cannot be pickled into a worker "
                       f"process — ship plain data and rebuild the "
                       f"callable worker-side"))
            return
        if isinstance(expr, ast.Call):
            self._classify_call(expr, function, env, assigns, out,
                                depth, visited)
            return
        if isinstance(expr, (ast.Name, ast.Attribute)):
            chain = _attr_chain(expr)
            if chain:
                escape = _segment_escape(chain[-1], expr,
                                         suppress_tracked)
                if escape is not None:
                    out.append(escape)
                    return
            self._classify_typed(expr, function, env, out)
            if isinstance(expr, ast.Name) and not suppress_tracked:
                # chase ``x = <expr>; ... x``, but not for a value a
                # sanctioned projection is narrowing — its provenance
                # is *expected* to be the shared state.
                target = assigns.get(expr.id)
                if target is not None and not isinstance(
                        target, (ast.Name, ast.Attribute)):
                    self._classify(target, function, env, assigns,
                                   out, False, depth + 1, visited)
            return
        if isinstance(expr, ast.Dict):
            for value in expr.values:
                if value is not None:
                    self._classify(value, function, env, assigns, out,
                                   False, depth + 1, visited)
            return
        if isinstance(expr, (ast.Tuple, ast.List, ast.Set)):
            for element in expr.elts:
                self._classify(element, function, env, assigns, out,
                               False, depth + 1, visited)
            return
        if isinstance(expr, ast.Starred):
            self._classify(expr.value, function, env, assigns, out,
                           suppress_tracked, depth + 1, visited)

    def _classify_call(self, call: ast.Call, function: FunctionNode,
                       env: dict[str, TypeRef],
                       assigns: dict[str, ast.expr],
                       out: list[WireEscape], depth: int,
                       visited: set[int]) -> None:
        name = dotted_name(call.func)
        leaf = name.split(".")[-1] if name is not None else \
            (call.func.attr if isinstance(call.func, ast.Attribute)
             else "?")
        if leaf == "open":
            out.append(WireEscape(
                reason="file", lineno=call.lineno, col=call.col_offset,
                detail="an open file handle cannot cross the process "
                       "boundary — ship the path and open it "
                       "worker-side"))
            return
        if leaf in _SCALAR_COERCIONS:
            return      # the result is an immutable scalar
        if leaf.startswith("pack_") or leaf in _CONTAINER_PROJECTIONS:
            for arg in list(call.args) \
                    + [kw.value for kw in call.keywords]:
                self._classify(arg, function, env, assigns, out,
                               True, depth + 1, visited)
            return
        # Un-sanctioned call: only its *result* crosses the wire, which
        # is opaque here — except that the callee's own name can match
        # an escape pattern (``unwrap_tracked(...)`` hands back the raw
        # table) and aliasing accessors hand back their receiver's
        # contents (``tracked.values()``).
        escape = _segment_escape(leaf, call, suppress_tracked=False)
        if escape is not None:
            out.append(escape)
            return
        if isinstance(call.func, ast.Attribute) \
                and leaf in _ALIASING_METHODS:
            self._classify(call.func.value, function, env, assigns,
                           out, False, depth + 1, visited)

    def _classify_typed(self, expr: ast.expr, function: FunctionNode,
                        env: dict[str, TypeRef],
                        out: list[WireEscape]) -> None:
        """Type-table classification: the expression's statically
        inferred class sits in the unsafety table."""
        ref = self.graph.infer_type(function.rel, expr, env)
        if ref is None:
            return
        entry = self.unsafe_classes.get(ref.name.split(".")[-1])
        if entry is None:
            return
        reason, attr = entry
        what = "instances" if ref.kind == "class" \
            else "a container of instances"
        out.append(WireEscape(
            reason="unsafe-instance", lineno=expr.lineno,
            col=expr.col_offset,
            detail=f"{what} of {ref.name.split('.')[-1]} cannot cross "
                   f"the wire: the class holds a {reason} "
                   f"(self.{attr}); ship plain config and rebuild "
                   f"worker-side"))

    # -------------------------------------------------------- report
    def report(self) -> dict[str, object]:
        """The ``contracts`` JSON payload's wire section."""
        roots: list[dict[str, object]] = []
        for root in self.roots:
            roots.append({
                "root": root.qualname,
                "role": root.role,
                "fields": [{
                    "key": f.key,
                    "line": f.lineno,
                    "escapes": [{
                        "reason": e.reason, "line": e.lineno,
                        "detail": e.detail,
                    } for e in f.escapes],
                } for f in root.fields],
                "clean": not root.escapes,
            })
        return {
            "roots": roots,
            "unsafe_classes": {
                name: {"reason": reason, "attr": attr}
                for name, (reason, attr)
                in sorted(self.unsafe_classes.items())},
            "n_escapes": sum(len(r.escapes) for r in self.roots),
        }
