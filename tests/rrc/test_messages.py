"""Tests for the RRC message set: roundtrips and semantic helpers."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.rrc.codec import BitReader, CodecError
from repro.rrc.messages import (
    Mib,
    RachConfig,
    RrcRelease,
    RrcSetup,
    SearchSpaceConfig,
    Sib1,
    TddConfig,
    decode_message,
)


def make_mib(**overrides):
    base = dict(sfn=123, scs_common_khz=30, ssb_subcarrier_offset=0,
                dmrs_typea_position=2, coreset0_index=5,
                search_space0_index=0)
    base.update(overrides)
    return Mib(**base)


def make_sib1(**overrides):
    base = dict(cell_identity=0x123456789, n_prb_carrier=51, scs_khz=30,
                is_tdd=True)
    base.update(overrides)
    return Sib1(**base)


class TestMib:
    def test_roundtrip(self):
        mib = make_mib()
        assert decode_message(mib.encode()) == mib

    def test_sfn_range(self):
        for sfn in (0, 511, 1023):
            assert decode_message(make_mib(sfn=sfn).encode()).sfn == sfn

    def test_barred_flag(self):
        mib = make_mib(cell_barred=True)
        assert decode_message(mib.encode()).cell_barred


class TestSib1:
    def test_roundtrip_default(self):
        sib1 = make_sib1()
        assert decode_message(sib1.encode()) == sib1

    def test_roundtrip_fdd_15khz(self):
        # T-Mobile profile shape: FDD, 15 kHz, 52 PRB.
        sib1 = make_sib1(scs_khz=15, is_tdd=False, n_prb_carrier=52,
                         initial_bwp_id=1)
        decoded = decode_message(sib1.encode())
        assert decoded == sib1
        assert decoded.initial_bwp_id == 1

    def test_rach_config_roundtrip(self):
        rach = RachConfig(prach_config_index=160, msg1_frequency_start=2,
                          preamble_received_target_power_dbm=-100,
                          ra_response_window_slots=10, msg1_scs_khz=15)
        sib1 = make_sib1(rach=rach)
        assert decode_message(sib1.encode()).rach == rach


class TestTddConfig:
    def test_pattern_semantics(self):
        tdd = TddConfig(period_slots=10, n_dl_slots=7, n_ul_slots=2)
        assert [tdd.is_downlink(s) for s in range(10)] == \
            [True] * 7 + [False] * 3
        assert [tdd.is_uplink(s) for s in range(10)] == \
            [False] * 8 + [True] * 2

    def test_pattern_wraps(self):
        tdd = TddConfig()
        assert tdd.is_downlink(10) == tdd.is_downlink(0)

    def test_invalid_pattern(self):
        with pytest.raises(CodecError):
            TddConfig(period_slots=10, n_dl_slots=9, n_ul_slots=2)

    @given(st.integers(2, 63), st.data())
    @settings(max_examples=30, deadline=None)
    def test_property_every_slot_classified(self, period, data):
        n_dl = data.draw(st.integers(0, period))
        n_ul = data.draw(st.integers(0, period - n_dl))
        tdd = TddConfig(period_slots=period, n_dl_slots=n_dl,
                        n_ul_slots=n_ul)
        for s in range(period):
            # A slot is never both DL and UL.
            assert not (tdd.is_downlink(s) and tdd.is_uplink(s))


class TestRrcSetup:
    def test_roundtrip_default(self):
        setup = RrcSetup(tc_rnti=0x4601)
        assert decode_message(setup.encode()) == setup

    def test_roundtrip_rich(self):
        setup = RrcSetup(
            tc_rnti=0x4601,
            search_space=SearchSpaceConfig(coreset_id=2, coreset_first_prb=4,
                                           coreset_n_prb=24,
                                           coreset_n_symbols=2,
                                           interleaved=False,
                                           n_candidates_al2=4),
            mcs_table="qam256", max_mimo_layers=2, dmrs_add_position=1,
            xoverhead=2, bwp_id=1)
        decoded = decode_message(setup.encode())
        assert decoded == setup
        assert decoded.search_space.candidates_per_level()[2] == 4

    def test_dmrs_overhead_mapping(self):
        assert RrcSetup(tc_rnti=1).n_dmrs_res_per_prb == 12
        assert RrcSetup(tc_rnti=1, dmrs_add_position=1) \
            .n_dmrs_res_per_prb == 24
        assert RrcSetup(tc_rnti=1, xoverhead=3).xoverhead_res == 18

    def test_identical_setups_encode_identically(self):
        """The paper exploits RRC Setup being identical across UEs to skip
        re-decoding (section 3.1.2); identical configs must produce
        identical bits apart from the TC-RNTI field."""
        a = RrcSetup(tc_rnti=0x1000).encode()
        b = RrcSetup(tc_rnti=0x1000).encode()
        assert (a == b).all()


class TestDispatch:
    def test_release_roundtrip(self):
        release = RrcRelease(rnti=0x1234)
        assert decode_message(release.encode()) == release

    def test_unknown_tag(self):
        from repro.rrc.codec import BitWriter
        bits = BitWriter().write(0x3F, 6).write(0, 16).to_bits()
        with pytest.raises(CodecError):
            decode_message(bits)

    def test_decode_from_padded_bytes(self):
        mib = make_mib()
        from repro.rrc.codec import BitWriter
        writer = BitWriter()
        for bit in mib.encode():
            writer.write(int(bit), 1)
        assert decode_message(writer.to_bytes_padded()) == mib
