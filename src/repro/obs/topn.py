"""Failure-clustering TopN analysis over an observability stream.

The first question a fleet operator asks of a long run is "which
UEs/cells account for the misses?".  This module answers it from the
bus's event stream alone: failure events (DCI misses, backpressure
drops, MSG 4 losses, sanitizer violations) are grouped by
``(cell, rnti, stage, reason)`` and ranked by count, producing a JSON
document for machines and a markdown table for humans
(``python -m repro.cli obs topn events.jsonl``).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterable, Mapping

#: Event names treated as failures, with the failure class they count
#: toward in the report's ``by_name`` totals.
FAILURE_NAMES: dict[str, str] = {
    "dci.miss": "decode miss",
    "dci.drop": "backpressure drop",
    "msg4.miss": "acquisition miss",
    "nrsan.violation": "sanitizer violation",
}

#: Report document version (independent of the event schema version).
REPORT_VERSION = 1


class TopnError(ValueError):
    """Raised for unreadable event streams."""


@dataclass(frozen=True)
class ClusterKey:
    """The grouping identity of one failure cluster."""

    cell: str | None
    rnti: int | None
    stage: str | None
    reason: str | None

    def sort_key(self) -> tuple:
        return (self.cell or "", self.rnti if self.rnti is not None
                else -1, self.stage or "", self.reason or "")


@dataclass
class Cluster:
    """One ranked group of failures."""

    key: ClusterKey
    count: int = 0
    first_slot: int | None = None
    last_slot: int | None = None
    by_name: dict[str, int] = field(default_factory=dict)

    def absorb(self, event: Mapping[str, Any]) -> None:
        self.count += 1
        name = str(event.get("name"))
        self.by_name[name] = self.by_name.get(name, 0) + 1
        slot = event.get("slot")
        if isinstance(slot, int) and not isinstance(slot, bool):
            if self.first_slot is None or slot < self.first_slot:
                self.first_slot = slot
            if self.last_slot is None or slot > self.last_slot:
                self.last_slot = slot


@dataclass
class TopnReport:
    """The clustered failure summary of one event stream."""

    total_events: int
    failures_total: int
    by_name: dict[str, int]
    clusters: list[Cluster]
    truncated: int  #: clusters beyond the requested TopN


def load_events(path: str | Path) -> list[dict[str, Any]]:
    """Read a JSONL event stream written by ``--obs jsonl:PATH``."""
    events: list[dict[str, Any]] = []
    target = Path(path)
    if not target.exists():
        raise TopnError(f"no such event stream: {target}")
    with target.open("r", encoding="utf-8") as handle:
        for line_no, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                event = json.loads(line)
            except json.JSONDecodeError as exc:
                raise TopnError(
                    f"{target}:{line_no}: not valid JSON: {exc}") \
                    from exc
            if not isinstance(event, dict):
                raise TopnError(
                    f"{target}:{line_no}: event is not an object")
            events.append(event)
    return events


def cluster_failures(events: Iterable[Mapping[str, Any]],
                     top_n: int = 10) -> TopnReport:
    """Group failure events by (cell, rnti, stage, reason) and rank.

    Ranking is count-descending with the cluster key as a deterministic
    tiebreak, so two runs over the same stream produce the same report
    byte for byte.
    """
    if top_n < 1:
        raise TopnError(f"top_n must be >= 1: {top_n}")
    clusters: dict[ClusterKey, Cluster] = {}
    by_name: dict[str, int] = {}
    total_events = 0
    failures_total = 0
    for event in events:
        total_events += 1
        name = event.get("name")
        if name not in FAILURE_NAMES:
            continue
        failures_total += 1
        by_name[name] = by_name.get(name, 0) + 1
        rnti = event.get("rnti")
        key = ClusterKey(
            cell=event.get("cell"),
            rnti=rnti if isinstance(rnti, int)
            and not isinstance(rnti, bool) else None,
            stage=event.get("stage"),
            reason=event.get("reason"))
        cluster = clusters.get(key)
        if cluster is None:
            cluster = clusters[key] = Cluster(key=key)
        cluster.absorb(event)
    ranked = sorted(clusters.values(),
                    key=lambda c: (-c.count, c.key.sort_key()))
    return TopnReport(total_events=total_events,
                      failures_total=failures_total,
                      by_name=dict(sorted(by_name.items())),
                      clusters=ranked[:top_n],
                      truncated=max(0, len(ranked) - top_n))


def report_to_json(report: TopnReport) -> dict[str, Any]:
    """The machine-readable report document."""
    return {
        "v": REPORT_VERSION,
        "total_events": report.total_events,
        "failures_total": report.failures_total,
        "by_name": report.by_name,
        "truncated_clusters": report.truncated,
        "clusters": [
            {
                "cell": c.key.cell,
                "rnti": c.key.rnti,
                "stage": c.key.stage,
                "reason": c.key.reason,
                "count": c.count,
                "share": (c.count / report.failures_total
                          if report.failures_total else 0.0),
                "first_slot": c.first_slot,
                "last_slot": c.last_slot,
                "by_name": dict(sorted(c.by_name.items())),
            }
            for c in report.clusters
        ],
    }


def render_markdown(report: TopnReport) -> str:
    """The human-readable report: a ranked failure-cluster table."""
    lines = ["# Failure clusters (TopN)", ""]
    lines.append(f"Events scanned: {report.total_events}; failures: "
                 f"{report.failures_total}.")
    if report.by_name:
        parts = ", ".join(
            f"{FAILURE_NAMES[name]} {count}"
            for name, count in report.by_name.items())
        lines.append(f"By class: {parts}.")
    lines.append("")
    if not report.clusters:
        lines.append("No failure events in the stream.")
        return "\n".join(lines) + "\n"
    lines.append("| # | cell | rnti | stage | reason | count | share "
                 "| slots |")
    lines.append("|--:|------|------|-------|--------|------:|------:"
                 "|-------|")
    for rank, cluster in enumerate(report.clusters, start=1):
        key = cluster.key
        rnti = f"0x{key.rnti:04x}" if key.rnti is not None else "-"
        share = cluster.count / report.failures_total
        if cluster.first_slot is None:
            slots = "-"
        elif cluster.first_slot == cluster.last_slot:
            slots = str(cluster.first_slot)
        else:
            slots = f"{cluster.first_slot}..{cluster.last_slot}"
        lines.append(
            f"| {rank} | {key.cell or '-'} | {rnti} "
            f"| {key.stage or '-'} | {key.reason or '-'} "
            f"| {cluster.count} | {share:.1%} | {slots} |")
    if report.truncated:
        lines.append("")
        lines.append(f"... and {report.truncated} smaller clusters "
                     f"not shown.")
    return "\n".join(lines) + "\n"
