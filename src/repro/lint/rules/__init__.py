"""Built-in nrlint rules.

One module per rule, named ``rNNN_<slug>.py``.  Modules here are
imported automatically by :func:`repro.lint.registry.iter_rules`; a new
rule only needs a ``@register``-decorated :class:`~repro.lint.registry.Rule`
subclass in its own file.
"""
