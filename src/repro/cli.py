"""Command-line interface: ``python -m repro.cli <command>``.

Mirrors how the released NR-Scope tool is driven from a terminal:

* ``sniff``    - run a telemetry session against a simulated cell and
  stream/emit the decoded telemetry (optionally as a JSONL log file,
  the paper Fig 4 "log file" output).
* ``cells``    - list the built-in cell profiles (section 5.1 testbeds).
* ``figure``   - regenerate one paper figure's table on stdout.
* ``survey``   - commercial-cell population survey (sections 5.3.1/6).
* ``fleet``    - supervised multi-cell run with come-and-go UEs and
  periodic checkpoints; ``--resume`` continues a killed run from its
  checkpoint file with telemetry identical to an uninterrupted run.
* ``bench``    - repeatable perf benchmarks (``bench fig12`` writes
  ``BENCH_fig12.json``, the executor x batch-kernel sweep;
  ``bench telemetry`` writes ``BENCH_telemetry.json``, the columnar
  store vs per-record baseline).
* ``obs``      - observability-stream tooling: ``obs topn`` clusters a
  session's failure events, ``obs validate`` checks a stream against
  the event schema.
* ``lint``     - the nrlint 3GPP bit-contract/determinism static
  analysis (also available as ``python -m repro.lint``).
"""

from __future__ import annotations

import argparse
import sys

from repro.analysis.report import print_tables
from repro.core.scope import NRScope
from repro.gnb.cell_config import ALL_PROFILES
from repro.simulation import Simulation


class CliError(ValueError):
    """Raised for invalid command-line usage."""


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="NR-Scope reproduction CLI")
    sub = parser.add_subparsers(dest="command", required=True)

    sniff = sub.add_parser("sniff", help="run one telemetry session")
    sniff.add_argument("--profile", default="srsran",
                       choices=sorted(ALL_PROFILES))
    sniff.add_argument("--ues", type=int, default=2)
    sniff.add_argument("--seconds", type=float, default=2.0)
    sniff.add_argument("--seed", type=int, default=0)
    sniff.add_argument("--traffic", default="mixed")
    sniff.add_argument("--channel", default="pedestrian")
    sniff.add_argument("--snr-db", type=float, default=18.0,
                       help="sniffer receive SNR")
    sniff.add_argument("--fidelity", default="message",
                       choices=["message", "iq"])
    sniff.add_argument("--json", metavar="PATH", default=None,
                       help="write the telemetry log as JSON lines")
    sniff.add_argument("--report", action="store_true",
                       help="print the full per-UE session report")
    sniff.add_argument("--executor", default="inline",
                       help="slot runtime executor: "
                            "inline | threaded[:N] | process[:N]")
    sniff.add_argument("--workers", type=int, default=4,
                       help="slot workers for the threaded executor")
    sniff.add_argument("--dci-threads", type=int, default=1,
                       help="DCI decode shards per slot")
    sniff.add_argument("--no-batch", action="store_true",
                       help="disable the batched PHY kernels "
                            "(per-candidate scalar decode)")
    sniff.add_argument("--runtime-stats", action="store_true",
                       help="print per-stage runtime statistics "
                            "(timings and drop counts, via the obs "
                            "bus counters)")
    sniff.add_argument("--obs", action="append", default=[],
                       metavar="SPEC",
                       help="enable the observability bus with a "
                            "reporter: jsonl:PATH | counters | "
                            "ring[:N] | tail[:stdout] (repeatable)")

    sub.add_parser("cells", help="list built-in cell profiles")

    obs = sub.add_parser("obs", help="observability-stream tooling")
    obs_sub = obs.add_subparsers(dest="obs_command", required=True)
    topn = obs_sub.add_parser(
        "topn", help="cluster a stream's failure events (TopN report)")
    topn.add_argument("events", metavar="EVENTS",
                      help="JSONL stream written by sniff --obs jsonl:")
    topn.add_argument("--top", type=int, default=10,
                      help="clusters to keep (default 10)")
    topn.add_argument("--json", metavar="PATH", default=None,
                      help="write the report as a JSON document")
    topn.add_argument("--md", metavar="PATH", default=None,
                      help="write the markdown table to a file "
                           "(default: stdout)")
    validate = obs_sub.add_parser(
        "validate", help="check a stream against the event schema")
    validate.add_argument("events", metavar="EVENTS",
                          help="JSONL stream to validate")

    figure = sub.add_parser("figure", help="regenerate a paper figure")
    figure.add_argument("name",
                        choices=["fig7", "fig8", "fig10", "fig11",
                                 "fig12", "fig13", "fig15"])
    figure.add_argument("--quick", action="store_true",
                        help="shorter sessions (coarser statistics)")

    survey = sub.add_parser("survey",
                            help="commercial-cell population survey")
    survey.add_argument("--seconds", type=float, default=600.0)
    survey.add_argument("--seed", type=int, default=0)

    fleet = sub.add_parser("fleet",
                           help="supervised multi-cell fleet run "
                                "with periodic checkpoints")
    fleet.add_argument("--cells", type=int, default=2)
    fleet.add_argument("--profile", default="srsran",
                       choices=sorted(ALL_PROFILES))
    fleet.add_argument("--seconds", type=float, default=3.0)
    fleet.add_argument("--seed", type=int, default=0)
    fleet.add_argument("--snr-db", type=float, default=18.0,
                       help="sniffer receive SNR per cell")
    fleet.add_argument("--arrivals", type=float, default=2.0,
                       help="UE arrivals per second per cell")
    fleet.add_argument("--holding-p90", type=float, default=6.0,
                       help="90th-percentile session holding time")
    fleet.add_argument("--horizon", type=float, default=None,
                       help="population horizon (default: --seconds)")
    fleet.add_argument("--interval", type=float, default=1.0,
                       help="checkpoint interval, simulated seconds")
    fleet.add_argument("--checkpoint", metavar="PATH", default=None,
                       help="checkpoint file (written atomically "
                            "after each interval)")
    fleet.add_argument("--resume", action="store_true",
                       help="restore the fleet from --checkpoint "
                            "before running")
    fleet.add_argument("--fidelity", default="message",
                       choices=["message", "iq"])
    fleet.add_argument("--executor", default="inline",
                       help="slot runtime executor: "
                            "inline | threaded[:N] | process[:N]")
    fleet.add_argument("--workers", type=int, default=4)
    fleet.add_argument("--json-dir", metavar="DIR", default=None,
                       help="write each cell's telemetry as "
                            "DIR/<cell>.jsonl")
    fleet.add_argument("--segments-dir", metavar="DIR", default=None,
                       help="write each cell's columnar segments "
                            "under DIR/<cell>/")
    fleet.add_argument("--obs", action="append", default=[],
                       metavar="SPEC",
                       help="enable the observability bus: jsonl:PATH "
                            "| counters | ring[:N] | tail[:stdout] "
                            "(repeatable)")

    bench = sub.add_parser("bench",
                           help="run a repeatable perf benchmark")
    bench.add_argument("name", choices=["fig12", "telemetry"])
    bench.add_argument("--quick", action="store_true",
                       help="tiny sweep (CI smoke; not a real "
                            "measurement)")
    bench.add_argument("--out", metavar="PATH", default=None,
                       help="output JSON document path (default "
                            "BENCH_<name>.json)")
    bench.add_argument("--slots", type=int, default=None,
                       help="timed slots per point (default 20, "
                            "quick 2; fig12 only)")

    from repro.lint.cli import add_arguments as add_lint_arguments
    lint = sub.add_parser("lint",
                          help="run the nrlint static-analysis pass")
    add_lint_arguments(lint)
    return parser


def cmd_sniff(args: argparse.Namespace) -> int:
    from repro.obs import CounterReporter, ObsContext, ReporterError, \
        reporters_from_specs

    profile = ALL_PROFILES[args.profile]
    try:
        reporters = reporters_from_specs(args.obs)
    except ReporterError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    counter_rep = next((r for r in reporters
                        if isinstance(r, CounterReporter)), None)
    show_counters = counter_rep is not None
    if args.runtime_stats and counter_rep is None:
        # The drops column is sourced from the bus counters, so the
        # stats flag quietly rides a counter reporter along.
        counter_rep = CounterReporter()
        reporters.append(counter_rep)
    obs = ObsContext.create(reporters, run_id=f"run-{args.seed:08x}")

    sim = Simulation.build(profile, n_ues=args.ues, seed=args.seed,
                           traffic=args.traffic, channel=args.channel,
                           fidelity=args.fidelity)
    scope = NRScope.attach(sim, snr_db=args.snr_db,
                           executor=args.executor,
                           n_workers=args.workers,
                           n_dci_threads=args.dci_threads,
                           batch_kernels=not args.no_batch,
                           obs=obs)
    sim.run(seconds=args.seconds)
    scope.close()
    obs.close()

    print(f"cell {profile.name}: band {profile.band}, "
          f"{profile.n_prb} PRB @ {profile.scs_khz} kHz, "
          f"{'TDD' if profile.is_tdd else 'FDD'}")
    print(f"observed {scope.counters.slots_observed} slots, decoded "
          f"{scope.counters.dcis_decoded} DCIs, "
          f"{scope.counters.msg4_seen} UEs via RACH "
          f"({scope.counters.msg4_missed} missed)")
    now = sim.now_s
    for rnti in scope.tracked_rntis:
        bits = scope.telemetry.bits_between(rnti, 0.0, now)
        retx = scope.telemetry.retransmission_ratio(rnti)
        srs = scope.uci.scheduling_request_count(rnti)
        cqi = scope.uci.latest_cqi(rnti)
        print(f"  UE 0x{rnti:04x}: {bits / now / 1e6:7.2f} Mbps DL, "
              f"retx {retx:6.2%}, CQI {cqi if cqi is not None else '-'}, "
              f"{srs} SRs")
    if args.runtime_stats:
        stats = scope.runtime_stats
        print(f"runtime [{stats.executor}]: "
              f"{stats.slots_completed}/{stats.slots_submitted} slots, "
              f"{stats.slots_dropped} dropped "
              f"({stats.dcis_dropped} DCIs), "
              f"{stats.budget_overruns} over budget")
        for stage in stats.stages:
            drops = int(counter_rep.value("stage.drop",
                                          stage=stage.name)) \
                if counter_rep is not None else stage.drops
            print(f"  {stage.name:<8} {stage.calls:6d} calls, "
                  f"mean {stage.mean_us:9.1f} us, "
                  f"max {1e6 * stage.max_s:9.1f} us, "
                  f"drops {drops:4d}")
    if show_counters and counter_rep is not None:
        print()
        print(counter_rep.render_text(), end="")
    if args.report:
        from repro.analysis.summary import build_session_report
        print()
        print(build_session_report(scope, args.seconds).render())
    if args.json:
        count = scope.telemetry.write_jsonl(args.json)
        print(f"wrote {count} telemetry records to {args.json}")
    return 0


def cmd_cells(args: argparse.Namespace) -> int:
    print(f"{'name':<14}{'band':<6}{'duplex':<8}{'SCS':<6}{'BW MHz':<8}"
          f"{'PRB':<5}{'BWP':<4}{'MCS table'}")
    for name in sorted(ALL_PROFILES):
        p = ALL_PROFILES[name]
        print(f"{p.name:<14}{p.band:<6}"
              f"{'TDD' if p.is_tdd else 'FDD':<8}"
              f"{p.scs_khz:<6}{p.bandwidth_hz / 1e6:<8.0f}"
              f"{p.n_prb:<5}{p.bwp_id:<4}{p.mcs_table}")
    return 0


def cmd_figure(args: argparse.Namespace) -> int:
    quick = 1.0 if args.quick else 4.0
    if args.name == "fig7":
        from repro.experiments import fig07_dci_miss as fig7
        srsran, amarisoft = fig7.run(duration_s=quick)
        print_tables([fig7.table(srsran, "Fig 7a - srsRAN"),
                      fig7.table(amarisoft, "Fig 7b - Amarisoft")])
    elif args.name == "fig8":
        from repro.experiments import fig08_reg_error as fig8
        srsran, amarisoft = fig8.run(duration_s=quick)
        print_tables([fig8.table(srsran, "Fig 8a - srsRAN"),
                      fig8.table(amarisoft, "Fig 8b - Amarisoft")])
    elif args.name == "fig10":
        from repro.experiments import fig10_active_time as fig10
        print_tables([fig10.table(fig10.run())])
    elif args.name == "fig11":
        from repro.experiments import fig11_ue_counts as fig11
        print_tables([fig11.table(fig11.run())])
    elif args.name == "fig12":
        from repro.experiments import fig12_processing as fig12
        if args.quick:
            rows = fig12.run(ue_counts=(1, 4, 8), n_slots=1)
        else:
            rows = fig12.run()
        print_tables([fig12.table(rows)])
    elif args.name == "fig13":
        from repro.experiments import fig13_coverage as fig13
        print_tables([fig13.table(
            fig13.run(duration_s=max(quick / 4, 0.5)))])
    elif args.name == "fig15":
        from repro.experiments import fig15_mcs_retx as fig15
        print_tables([fig15.table(
            fig15.run(n_ues=8, duration_s=max(quick / 2, 1.0)))])
    else:  # pragma: no cover - argparse restricts choices
        raise CliError(f"unknown figure: {args.name}")
    return 0


def cmd_survey(args: argparse.Namespace) -> int:
    import numpy as np

    from repro.ue.population import ComeAndGoProcess, \
        TMOBILE_CELL1_PROFILES, active_counts

    profile = TMOBILE_CELL1_PROFILES["afternoon"]
    sessions = ComeAndGoProcess(profile, seed=args.seed) \
        .generate(args.seconds)
    holdings = np.array([s.holding_s for s in sessions])
    per_minute = active_counts(sessions, args.seconds, 60.0)
    print(f"window: {args.seconds:.0f} s, distinct UEs: {len(sessions)}")
    print(f"holding time: median {np.median(holdings):.1f} s, "
          f"p90 {np.percentile(holdings, 90):.1f} s")
    print(f"active per minute: median {np.median(per_minute):.0f}, "
          f"max {per_minute.max()}")
    return 0


def cmd_fleet(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.core.fleet import FleetConfig, FleetError, FleetSupervisor
    from repro.obs import CounterReporter, ObsContext, ReporterError, \
        reporters_from_specs

    try:
        reporters = reporters_from_specs(args.obs)
    except ReporterError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    obs = ObsContext.create(reporters, run_id=f"fleet-{args.seed:08x}") \
        if reporters else None

    try:
        if args.resume:
            if not args.checkpoint:
                raise FleetError("--resume needs --checkpoint PATH")
            supervisor = FleetSupervisor.restore(args.checkpoint, obs=obs)
            print(f"resumed {len(supervisor.controller.cells)} cells "
                  f"at t={supervisor.now_s:.3f} s "
                  f"from {args.checkpoint}")
        else:
            config = FleetConfig(
                n_cells=args.cells, profile=args.profile,
                seed=args.seed, snr_db=args.snr_db,
                arrivals_per_second=args.arrivals,
                holding_p90_s=args.holding_p90,
                horizon_s=args.horizon if args.horizon is not None
                else args.seconds,
                fidelity=args.fidelity,
                checkpoint_interval_s=args.interval,
                executor=args.executor, n_workers=args.workers)
            supervisor = FleetSupervisor.build(config, obs=obs)
        supervisor.run(args.seconds, checkpoint_path=args.checkpoint)
    except FleetError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    controller = supervisor.controller
    now = supervisor.now_s
    print(f"fleet of {len(controller.cells)} cells at t={now:.3f} s")
    for name in controller.cells:
        stream = controller.stream(name)
        scope = stream.scope
        print(f"  {name}: {scope.counters.dcis_decoded} DCIs, "
              f"{scope.counters.msg4_seen} UEs via RACH "
              f"({scope.counters.msg4_missed} missed), "
              f"{len(scope.tracked_rntis)} tracked, "
              f"{len(scope.telemetry)} telemetry rows")
    if args.checkpoint:
        print(f"checkpoint: {args.checkpoint}")
    if args.json_dir:
        base = Path(args.json_dir)
        base.mkdir(parents=True, exist_ok=True)
        for name in controller.cells:
            scope = controller.stream(name).scope
            count = scope.telemetry.write_jsonl(base / f"{name}.jsonl")
            print(f"wrote {count} records to {base / (name + '.jsonl')}")
    if args.segments_dir:
        written = supervisor.write_segments(args.segments_dir)
        for name, rows in sorted(written.items()):
            print(f"wrote {rows} rows of columnar segments to "
                  f"{Path(args.segments_dir) / name}")
    counter_rep = next((r for r in reporters
                        if isinstance(r, CounterReporter)), None)
    if counter_rep is not None:
        print()
        print(counter_rep.render_text(), end="")
    if obs is not None:
        obs.close()
    return 0


def cmd_bench(args: argparse.Namespace) -> int:
    if args.name == "fig12":
        from repro.experiments import bench_fig12
        out = args.out or "BENCH_fig12.json"
        doc = bench_fig12.main(out_path=out, quick=args.quick,
                               n_slots=args.slots)
        print(bench_fig12.render(doc))
    elif args.name == "telemetry":
        from repro.experiments import bench_telemetry
        out = args.out or "BENCH_telemetry.json"
        doc = bench_telemetry.main(out_path=out, quick=args.quick)
        print(bench_telemetry.render(doc))
    else:  # pragma: no cover - argparse restricts choices
        raise CliError(f"unknown bench: {args.name}")
    print(f"wrote {out}")
    return 0


def cmd_obs(args: argparse.Namespace) -> int:
    import json
    from pathlib import Path

    from repro.obs import KNOWN_EVENTS, SCHEMA_VERSION, \
        cluster_failures, load_events, render_markdown, \
        report_to_json, validate_events
    from repro.obs.topn import TopnError

    try:
        events = load_events(args.events)
    except TopnError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    if args.obs_command == "validate":
        problems = validate_events(events, registry=KNOWN_EVENTS)
        if problems:
            for index, problem in problems[:20]:
                print(f"event {index}: {problem}")
            if len(problems) > 20:
                print(f"... and {len(problems) - 20} more")
            print(f"invalid: {len(problems)} problems in "
                  f"{len(events)} events")
            return 1
        print(f"ok: {len(events)} events, schema v{SCHEMA_VERSION}")
        return 0

    try:
        report = cluster_failures(events, top_n=args.top)
    except TopnError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.json:
        document = json.dumps(report_to_json(report), indent=2,
                              sort_keys=True)
        Path(args.json).write_text(document + "\n", encoding="utf-8")
        print(f"wrote {args.json}")
    markdown = render_markdown(report)
    if args.md:
        Path(args.md).write_text(markdown, encoding="utf-8")
        print(f"wrote {args.md}")
    else:
        print(markdown, end="")
    return 0


def cmd_lint(args: argparse.Namespace) -> int:
    from repro.lint.cli import run as run_lint
    return run_lint(args)


_COMMANDS = {"sniff": cmd_sniff, "cells": cmd_cells,
             "figure": cmd_figure, "survey": cmd_survey,
             "fleet": cmd_fleet, "bench": cmd_bench, "obs": cmd_obs,
             "lint": cmd_lint}


def main(argv: list[str] | None = None) -> int:
    """Entry point; returns the process exit code."""
    args = _build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
